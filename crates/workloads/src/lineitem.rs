//! TPC-H `lineitem` row generation.
//!
//! The paper's structured workload selects from the 16-column `lineitem`
//! table ("SELECT ... FROM lineitem WHERE L_QUANTITY > VAL", tuned so ~10%
//! of tuples qualify). This generator produces '|'-separated rows with the
//! TPC-H column layout and value distributions close enough for selectivity
//! experiments: `l_quantity` is uniform in 1..=50, so `quantity > 45`
//! selects ~10% of rows, exactly how the paper tunes `VAL`.

use s3_sim::SimRng;
use std::fmt::Write as _;

/// Column names of `lineitem`, in order.
pub const COLUMNS: [&str; 16] = [
    "l_orderkey",
    "l_partkey",
    "l_suppkey",
    "l_linenumber",
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_returnflag",
    "l_linestatus",
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
    "l_shipinstruct",
    "l_shipmode",
    "l_comment",
];

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const LINE_STATUS: [&str; 2] = ["O", "F"];
const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const SHIP_MODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const COMMENT_WORDS: [&str; 8] = [
    "carefully", "quickly", "furiously", "deposits", "accounts", "requests", "packages", "ideas",
];

/// A parsed-enough view of one row for predicate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LineItem {
    /// `l_orderkey`.
    pub orderkey: u64,
    /// `l_quantity` (1..=50).
    pub quantity: u32,
    /// `l_extendedprice` in cents.
    pub extendedprice_cents: u64,
    /// `l_discount` in hundredths (0..=10).
    pub discount_pct: u32,
}

/// Generates `lineitem` rows deterministically.
#[derive(Debug, Clone, Default)]
pub struct LineItemGen {
    next_orderkey: u64,
}

impl LineItemGen {
    /// A fresh generator starting at orderkey 1.
    pub fn new() -> Self {
        LineItemGen { next_orderkey: 1 }
    }

    /// Append one row (with trailing newline) to `out`; returns the row's
    /// parsed view.
    pub fn append_row(&mut self, rng: &mut SimRng, out: &mut String) -> LineItem {
        let orderkey = self.next_orderkey;
        self.next_orderkey += 1;
        let partkey = rng.index(200_000) as u64 + 1;
        let suppkey = rng.index(10_000) as u64 + 1;
        let linenumber = rng.index(7) + 1;
        let quantity = rng.index(50) as u32 + 1;
        let extendedprice_cents = (quantity as u64) * (90_000 + rng.index(20_000) as u64);
        let discount_pct = rng.index(11) as u32;
        let tax_pct = rng.index(9);
        let returnflag = RETURN_FLAGS[rng.index(3)];
        let linestatus = LINE_STATUS[rng.index(2)];
        let base_day = rng.index(2500);
        let (y, m, d) = date_from_day(base_day);
        let (cy, cm, cd) = date_from_day(base_day + 30 + rng.index(60));
        let (ry, rm, rd) = date_from_day(base_day + 1 + rng.index(30));
        let instruct = SHIP_INSTRUCT[rng.index(4)];
        let mode = SHIP_MODE[rng.index(7)];
        let c1 = COMMENT_WORDS[rng.index(8)];
        let c2 = COMMENT_WORDS[rng.index(8)];

        // 16 '|'-separated fields, TPC-H text format.
        writeln!(
            out,
            "{orderkey}|{partkey}|{suppkey}|{linenumber}|{quantity}|{}.{:02}|0.{:02}|0.0{tax_pct}|{returnflag}|{linestatus}|{y:04}-{m:02}-{d:02}|{cy:04}-{cm:02}-{cd:02}|{ry:04}-{rm:02}-{rd:02}|{instruct}|{mode}|{c1} {c2}",
            extendedprice_cents / 100,
            extendedprice_cents % 100,
            discount_pct,
        )
        .expect("writing to String cannot fail");

        LineItem {
            orderkey,
            quantity,
            extendedprice_cents,
            discount_pct,
        }
    }

    /// Generate at least `bytes` of rows.
    pub fn generate(&mut self, rng: &mut SimRng, bytes: usize) -> String {
        assert!(bytes > 0, "cannot generate zero bytes");
        let mut out = String::with_capacity(bytes + 256);
        while out.len() < bytes {
            self.append_row(rng, &mut out);
        }
        out
    }
}

/// Map a day offset to a (year, month, day) in the TPC-H 1992–1998 window;
/// 30-day months keep it simple (dates are only compared lexically).
fn date_from_day(day: usize) -> (u32, u32, u32) {
    let years = day / 360;
    let rem = day % 360;
    (1992 + years as u32, (rem / 30) as u32 + 1, (rem % 30) as u32 + 1)
}

/// Parse the fields a selection predicate needs from a generated row.
/// Returns `None` for malformed rows (defensive; generated rows parse).
pub fn parse_row(line: &str) -> Option<LineItem> {
    parse_row_bytes(line.as_bytes())
}

/// Parse a decimal integer from raw ASCII digits. Rejects empty fields,
/// non-digit bytes, and overflow — the same inputs `str::parse` rejects.
fn parse_uint(field: &[u8]) -> Option<u64> {
    if field.is_empty() {
        return None;
    }
    let mut n: u64 = 0;
    for &b in field {
        if !b.is_ascii_digit() {
            return None;
        }
        n = n.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(n)
}

/// Byte-level [`parse_row`]: the scan hot path hands out `&[u8]` rows and
/// this parses them without building a single intermediate `String` (or
/// even validating UTF-8 — the digits and `|`/`.` separators it inspects
/// are plain ASCII).
pub fn parse_row_bytes(line: &[u8]) -> Option<LineItem> {
    let mut f = line.split(|&b| b == b'|');
    let orderkey = parse_uint(f.next()?)?;
    let _partkey = f.next()?;
    let _suppkey = f.next()?;
    let _linenumber = f.next()?;
    let quantity = u32::try_from(parse_uint(f.next()?)?).ok()?;
    let price = f.next()?;
    let dot = memchr::memchr(b'.', price)?;
    let extendedprice_cents =
        parse_uint(&price[..dot])?.checked_mul(100)? + parse_uint(&price[dot + 1..])?;
    let discount = f.next()?;
    let dot = memchr::memchr(b'.', discount)?;
    let discount_pct = u32::try_from(parse_uint(&discount[dot + 1..])?).ok()?;
    Some(LineItem {
        orderkey,
        quantity,
        extendedprice_cents,
        discount_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_sixteen_fields() {
        let mut gen = LineItemGen::new();
        let mut rng = SimRng::seed_from_u64(1);
        let text = gen.generate(&mut rng, 10_000);
        for line in text.lines() {
            assert_eq!(line.split('|').count(), 16, "row: {line}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LineItemGen::new().generate(&mut SimRng::seed_from_u64(9), 5000);
        let b = LineItemGen::new().generate(&mut SimRng::seed_from_u64(9), 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn parse_roundtrips_generated_rows() {
        let mut gen = LineItemGen::new();
        let mut rng = SimRng::seed_from_u64(2);
        let mut buf = String::new();
        for _ in 0..200 {
            buf.clear();
            let item = gen.append_row(&mut rng, &mut buf);
            let parsed = parse_row(buf.trim_end()).expect("generated row parses");
            assert_eq!(parsed, item);
        }
    }

    #[test]
    fn quantity_gt_45_selects_about_ten_percent() {
        // The paper tunes VAL for 10% selectivity; quantity is uniform in
        // 1..=50 so quantity > 45 selects 5/50 = 10%.
        let mut gen = LineItemGen::new();
        let mut rng = SimRng::seed_from_u64(3);
        let text = gen.generate(&mut rng, 2_000_000);
        let total = text.lines().count();
        let selected = text
            .lines()
            .filter(|l| parse_row(l).is_some_and(|r| r.quantity > 45))
            .count();
        let rate = selected as f64 / total as f64;
        assert!((0.08..0.12).contains(&rate), "selectivity {rate}");
    }

    #[test]
    fn orderkeys_are_unique_and_increasing() {
        let mut gen = LineItemGen::new();
        let mut rng = SimRng::seed_from_u64(4);
        let text = gen.generate(&mut rng, 50_000);
        let keys: Vec<u64> = text
            .lines()
            .map(|l| parse_row(l).unwrap().orderkey)
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn malformed_rows_do_not_parse() {
        assert!(parse_row("not|a|row").is_none());
        assert!(parse_row("").is_none());
        assert!(parse_row("x|1|2|3|notanumber|5.00|0.01|0.01|R|O|d|d|d|i|m|c").is_none());
    }
}
