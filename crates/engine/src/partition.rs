//! Skew-aware reduce partitioning: the shared key→shard hash, per-worker
//! key-distribution sketches, and the weighted partition plan built from
//! them when [`crate::PartitionMode::Weighted`] is enabled.
//!
//! The hash path is the classic MapReduce shuffle, with one deliberate
//! change: shard selection uses the bias-free widening-multiply reduction
//! ([`shard_of_hash`]) instead of `hash % n`, which skews low shards for
//! non-power-of-two reducer counts. The weighted path observes every
//! record the combiners push (weight 1 per reduce-input record), keeps the
//! top-K heaviest key hashes per worker exactly plus an exact residual
//! total, merges the sketches once the scan is done, and assigns heavy
//! keys greedily to the least-loaded shard. A shard estimated heavier than
//! a configurable factor of the mean sheds heavy keys into extra bins, so
//! the reduce pool can spread an unsplittable-looking hot shard across
//! idle workers. Light keys keep flowing through [`shard_of_hash`] over
//! the base shard count, so every key — sketched or not — lands in exactly
//! one bin.

use fxhash::FxHashMap;
use std::hash::{Hash, Hasher};

/// Heavy hitters tracked per sketch. Plenty for a Zipf head (the ~60k-word
/// paper corpus concentrates >40% of records in its top 64 words at
/// s=1.2) while keeping sketch merge O(K log K).
pub(crate) const SKETCH_TOP_K: usize = 64;

/// Canonical 64-bit key hash used by every partitioning site (identical to
/// `fxhash::hash64`, spelled out so all call sites share one definition).
pub(crate) fn key_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = fxhash::FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Map a key hash onto `n` shards without modulo bias: the widening
/// multiply `(h × n) >> 64` scales `h / 2^64` into `[0, n)` — uniform for
/// every `n`, power of two or not, where `h % n` over-fills low shards by
/// up to `2^64 mod n` hashes each. `n == 0` is clamped to one shard so a
/// degenerate reducer count can never fault mid-reduce.
pub(crate) fn shard_of_hash(h: u64, n: usize) -> usize {
    ((h as u128 * n.max(1) as u128) >> 64) as usize
}

/// An exact-total sketch of one key distribution: the top-K heaviest key
/// hashes with their exact observed weights, plus the exact total weight
/// of everything else. Totals are exact under both [`KeySketch::observe`]
/// and [`KeySketch::merge`]; only the *attribution* of a key that is heavy
/// in one sketch and light in another degrades (its light share joins the
/// residual), which costs plan accuracy, never correctness.
#[derive(Debug, Clone, Default)]
pub(crate) struct KeySketch {
    /// Exact per-hash weights while building; pruned to the top K on
    /// [`KeySketch::finish`] and kept at ≤ 2K between merges.
    counts: FxHashMap<u64, u64>,
    /// Weight observed for keys pruned out of `counts`.
    rest: u64,
    /// Total observed weight (`counts` sum + `rest`), always exact.
    total: u64,
}

impl KeySketch {
    pub(crate) fn new() -> KeySketch {
        KeySketch::default()
    }

    /// Record `weight` reduce-input records for the key hashing to `h`.
    pub(crate) fn observe(&mut self, h: u64, weight: u64) {
        *self.counts.entry(h).or_insert(0) += weight;
        self.total += weight;
        // Bound the build-side map: prune to the top K when it doubles.
        if self.counts.len() >= 4 * SKETCH_TOP_K {
            self.prune(2 * SKETCH_TOP_K);
        }
    }

    /// Finish the per-worker build: keep the top-K heaviest hashes, fold
    /// everything else into the residual.
    pub(crate) fn finish(mut self) -> KeySketch {
        self.prune(SKETCH_TOP_K);
        self
    }

    /// Merge another sketch into this one. Totals add exactly; the merged
    /// heavy set is re-pruned to the top K.
    pub(crate) fn merge(&mut self, other: KeySketch) {
        for (h, w) in other.counts {
            *self.counts.entry(h).or_insert(0) += w;
        }
        self.rest += other.rest;
        self.total += other.total;
        self.prune(SKETCH_TOP_K);
    }

    fn prune(&mut self, keep: usize) {
        if self.counts.len() <= keep {
            return;
        }
        let mut entries: Vec<(u64, u64)> = self.counts.drain().collect();
        // Heaviest first; hash breaks ties so pruning is deterministic.
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (h, w) in entries.drain(keep..) {
            let _ = h;
            self.rest += w;
        }
        self.counts.extend(entries);
    }

    /// Total observed weight (exact).
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Tracked heavy hitters, heaviest first (deterministic order).
    fn heavy_sorted(&self) -> Vec<(u64, u64)> {
        let mut heavy: Vec<(u64, u64)> = self.counts.iter().map(|(&h, &w)| (h, w)).collect();
        heavy.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        heavy
    }
}

/// A concrete key→bin routing built from a merged [`KeySketch`]: heavy
/// hashes carry explicit assignments, every other key routes through
/// [`shard_of_hash`] over the base shard count. Bins `base_bins..nbins`
/// exist only when an overweight shard was split; they hold heavy keys
/// exclusively.
#[derive(Debug, Clone)]
pub(crate) struct PartitionPlan {
    /// Shard count light keys hash over (the reduce pool width).
    base_bins: usize,
    /// Estimated weight per bin. Sums exactly to the sketch total.
    estimates: Vec<u64>,
    /// Explicit routes for sketched heavy hitters.
    heavy: FxHashMap<u64, u32>,
}

impl PartitionPlan {
    /// Build a plan over `nshards` base bins (clamped to ≥ 1) from a
    /// merged sketch. `split_factor_x1000` is the split threshold in
    /// thousandths of the mean bin weight (see
    /// [`crate::PartitionMode::split_factor_x1000`]).
    pub(crate) fn build(sketch: &KeySketch, nshards: usize, split_factor_x1000: u64) -> PartitionPlan {
        let n = nshards.max(1);
        // Residual (unsketched) weight spreads uniformly over the base
        // bins; the first `rem` bins absorb the remainder so the estimate
        // column sums exactly to the observed total.
        let rest = sketch.rest;
        let mut estimates: Vec<u64> = (0..n)
            .map(|b| rest / n as u64 + u64::from((b as u64) < rest % n as u64))
            .collect();
        let mut heavy: FxHashMap<u64, u32> = FxHashMap::default();
        // Per-bin heavy assignments, kept lightest-last for the split pass.
        let mut bin_heavy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];

        // Greedy makespan: heaviest key to the least-loaded bin (lowest
        // index wins ties, so the plan is a pure function of the sketch).
        for (h, w) in sketch.heavy_sorted() {
            let b = (0..n).min_by_key(|&b| (estimates[b], b)).unwrap_or(0);
            estimates[b] += w;
            heavy.insert(h, b as u32);
            bin_heavy[b].push((h, w));
        }

        // Split pass: a bin estimated heavier than `factor × mean` sheds
        // heavy keys (lightest first — shave the excess, keep the
        // unsplittable head in place) into extra bins the reduce pool can
        // schedule independently. A bin whose weight is one indivisible
        // key stays as-is: values of one key must reduce together.
        let total = sketch.total;
        let mean = total / n as u64;
        let threshold = (mean.saturating_mul(split_factor_x1000) / 1000).max(mean.max(1));
        let mut spilled: Vec<(u64, u64)> = Vec::new();
        for b in 0..n {
            while estimates[b] > threshold && bin_heavy[b].len() >= 2 {
                let (h, w) = bin_heavy[b].pop().expect("len >= 2");
                estimates[b] -= w;
                spilled.push((h, w));
            }
        }
        // First-fit the spilled keys into extra bins.
        for (h, w) in spilled {
            let extra = estimates[n..]
                .iter()
                .position(|&e| e.saturating_add(w) <= threshold);
            let b = match extra {
                Some(i) => n + i,
                None => {
                    estimates.push(0);
                    estimates.len() - 1
                }
            };
            estimates[b] += w;
            heavy.insert(h, b as u32);
        }

        PartitionPlan {
            base_bins: n,
            estimates,
            heavy,
        }
    }

    /// Total bins, including split-off extras. Always ≥ 1.
    pub(crate) fn nbins(&self) -> usize {
        self.estimates.len()
    }

    /// Route a key hash: explicit heavy assignment, else bias-free hash
    /// over the base bins. Total — every hash lands in exactly one bin.
    pub(crate) fn bin_of_hash(&self, h: u64) -> usize {
        match self.heavy.get(&h) {
            Some(&b) => b as usize,
            None => shard_of_hash(h, self.base_bins),
        }
    }

    /// Estimated weight per bin. Sums exactly to the sketch total.
    pub(crate) fn estimates(&self) -> &[u64] {
        &self.estimates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(pairs: &[(u64, u64)]) -> KeySketch {
        let mut s = KeySketch::new();
        for &(h, w) in pairs {
            s.observe(h, w);
        }
        s.finish()
    }

    /// Satellite: the hash path's shard assignment is pinned so the switch
    /// from `% n` to the widening multiply is deliberate and replay-stable.
    /// Expected values are the widening-multiply outputs for fxhash of
    /// these strings — any change to the hash or the reduction breaks this.
    #[test]
    fn hash_shard_assignment_snapshot() {
        let keys = ["apple", "banana", "cherry", "zipf", "s3", ""];
        let got: Vec<Vec<usize>> = [3usize, 5, 7, 8]
            .iter()
            .map(|&n| keys.iter().map(|k| shard_of_hash(key_hash(k), n)).collect())
            .collect();
        assert_eq!(
            got,
            vec![
                vec![2, 1, 2, 2, 0, 0], // n = 3
                vec![4, 2, 4, 4, 1, 0], // n = 5
                vec![6, 3, 5, 6, 2, 1], // n = 7
                vec![7, 4, 6, 7, 2, 1], // n = 8
            ]
        );
    }

    #[test]
    fn shard_of_hash_is_total_and_in_range() {
        for n in 1..=17usize {
            for h in [0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert!(shard_of_hash(h, n) < n, "h={h} n={n}");
            }
        }
        // Degenerate clamp: zero shards routes to shard 0, never faults.
        assert_eq!(shard_of_hash(u64::MAX, 0), 0);
    }

    #[test]
    fn merge_of_empty_sketches_is_empty() {
        let mut a = KeySketch::new().finish();
        a.merge(KeySketch::new().finish());
        assert_eq!(a.total(), 0);
        let plan = PartitionPlan::build(&a, 4, 1250);
        assert_eq!(plan.nbins(), 4);
        assert_eq!(plan.estimates().iter().sum::<u64>(), 0);
    }

    #[test]
    fn single_key_corpus_keeps_one_indivisible_bin() {
        // Every record is one key: the plan must put all its weight in
        // exactly one bin and never split it (one key cannot be split).
        let mut merged = sketch_of(&[(42, 1000)]);
        merged.merge(sketch_of(&[(42, 500)]));
        assert_eq!(merged.total(), 1500);
        let plan = PartitionPlan::build(&merged, 4, 1250);
        assert_eq!(plan.nbins(), 4);
        assert_eq!(plan.estimates().iter().sum::<u64>(), 1500);
        let b = plan.bin_of_hash(42);
        assert_eq!(plan.estimates()[b], 1500);
    }

    #[test]
    fn all_unique_keys_spread_residual_uniformly() {
        // 10_000 distinct keys, weight 1 each: almost everything prunes
        // into the residual, which must spread evenly and sum exactly.
        let mut s = KeySketch::new();
        for h in 0..10_000u64 {
            s.observe(h.wrapping_mul(0x9E37_79B9_7F4A_7C15), 1);
        }
        let s = s.finish();
        assert_eq!(s.total(), 10_000);
        let plan = PartitionPlan::build(&s, 8, 1250);
        assert_eq!(plan.estimates().iter().sum::<u64>(), 10_000);
        let (lo, hi) = (
            *plan.estimates().iter().min().unwrap(),
            *plan.estimates().iter().max().unwrap(),
        );
        // Uniform residual + 64 unit-weight heavies: near-perfect balance.
        assert!(hi - lo <= 64, "estimates {:?}", plan.estimates());
    }

    #[test]
    fn merge_keeps_totals_exact_under_pruning() {
        // Two sketches with disjoint heavy sets far beyond K: merged total
        // must equal the exact sum even though most keys fall to residual.
        let a_pairs: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 2 + 1, i + 1)).collect();
        let b_pairs: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 2 + 100_000, 2 * i + 1)).collect();
        let exact: u64 = a_pairs.iter().chain(&b_pairs).map(|&(_, w)| w).sum();
        let mut merged = sketch_of(&a_pairs);
        merged.merge(sketch_of(&b_pairs));
        assert_eq!(merged.total(), exact);
        let plan = PartitionPlan::build(&merged, 5, 1250);
        assert_eq!(plan.estimates().iter().sum::<u64>(), exact);
    }

    #[test]
    fn oversized_shard_splits_into_extra_bins() {
        // Five heavy keys on two shards with no residual: greedy packs
        // [5000+4000+4000, 5000+4000] so bin 0 carries 13000 against a mean
        // of 11000. With a tight split factor the overweight bin sheds its
        // lightest key into a fresh bin appended past the base width.
        let pairs: Vec<(u64, u64)> =
            [(1u64, 5000u64), (2, 5000), (3, 4000), (4, 4000), (5, 4000)].to_vec();
        let s = sketch_of(&pairs);
        let plan = PartitionPlan::build(&s, 2, 1000);
        assert!(plan.nbins() > 2, "expected split bins, got {}", plan.nbins());
        assert_eq!(plan.estimates().iter().sum::<u64>(), 22_000);
        for (b, &e) in plan.estimates().iter().enumerate() {
            assert!(e <= 11_000, "bin {b} over threshold: {e}");
        }
        // Every heavy key still routes to exactly one in-range bin.
        for (h, _) in pairs {
            assert!(plan.bin_of_hash(h) < plan.nbins());
        }
    }

    #[test]
    fn plan_routing_is_total_and_deterministic() {
        let pairs: Vec<(u64, u64)> = (0..200u64).map(|i| (i * 31 + 7, (i % 13) + 1)).collect();
        let s = sketch_of(&pairs);
        let p1 = PartitionPlan::build(&s, 6, 1250);
        let p2 = PartitionPlan::build(&s, 6, 1250);
        for h in (0..50_000u64).step_by(17) {
            let b = p1.bin_of_hash(h);
            assert!(b < p1.nbins());
            assert_eq!(b, p2.bin_of_hash(h), "plan must be deterministic");
        }
        assert_eq!(p1.estimates(), p2.estimates());
    }
}
