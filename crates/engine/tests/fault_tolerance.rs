//! Fault-tolerance integration tests for the shared-scan server:
//!
//! - **quarantine containment** (property): any subset of jobs panicking
//!   at any segment fails individually, and every surviving job's output
//!   is byte-identical to running it solo with [`run_job`] — sharing a
//!   faulty scan never corrupts a healthy rider;
//! - **speculation**: an injected straggler worker triggers speculative
//!   re-execution, outputs stay exact (first-result-wins commit), and the
//!   recovery is visible in the metrics registry;
//! - **shutdown drains handles**: every submitted handle resolves at
//!   shutdown — with its output when the revolution completed, with
//!   [`JobError::Aborted`] otherwise — and a handle never hangs, even
//!   when the server is dropped without `shutdown()` or the submit races
//!   the shutdown flag.

use s3_engine::{
    run_job, AdaptiveConfig, BlockStore, EngineChaosConfig, EngineFault, ExecConfig, FaultPlan,
    FtConfig, JobError, MapReduceJob, Obs, ServerConfig, SharedScanServer,
};
use std::time::Duration;

/// Word count with a prefix filter (fold combiner + per-token map).
struct Count(String);

impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.0) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        true
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
    fn map_is_per_token(&self) -> bool {
        true
    }
    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.0) {
            emit(token.to_string(), 1);
        }
    }
}

fn store() -> BlockStore {
    let text = "alpha beta alpha gamma\nbeta delta alpha\nepsilon beta gamma delta\n".repeat(300);
    BlockStore::from_text(&text, 1024)
}

fn solo(prefix: &str, s: &BlockStore) -> std::collections::BTreeMap<String, i64> {
    run_job(
        &Count(prefix.to_string()),
        s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 4,
        ..ExecConfig::default()
        },
    )
    .records
}

const PREFIXES: [&str; 4] = ["", "a", "be", "ga"];

/// Satellite (d) as a seeded sweep: for every seed, a random subset of the
/// jobs panics at a random point of its own revolution; every other job
/// must produce output byte-identical to its solo run, and the metrics
/// must account for exactly the panicked subset. Runs both scan paths.
#[test]
fn panicking_subset_never_corrupts_survivors() {
    let s = store();
    let num_segments = s.num_blocks().div_ceil(2) as u64; // bps = 2 below
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();

    for seed in 0u64..24 {
        // Cheap deterministic PRNG over the seed: pick the doomed subset
        // and each victim's panic segment without pulling in rand here.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let doomed_mask = (next() % 15) as usize; // 0..=14: never all 4 doomed
        let faults: Vec<EngineFault> = (0..PREFIXES.len())
            .filter(|i| doomed_mask & (1 << i) != 0)
            .map(|i| EngineFault::PanicMap {
                job: i as u64,
                after_segments: next() % num_segments,
            })
            .collect();
        let num_doomed = faults.len();

        for speculation in [false, true] {
            let mut cfg = ServerConfig::new(2, 3);
            cfg.obs = Obs::new();
            cfg.ft = if speculation {
                FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                }
            } else {
                FtConfig::default()
            };
            cfg.faults = Some(FaultPlan {
                faults: faults.clone(),
            });
            let obs = cfg.obs.clone();
            let server = SharedScanServer::with_config(s.clone(), cfg);
            let handles =
                server.submit_all(PREFIXES.iter().map(|p| Count(p.to_string())).collect());
            for (i, (h, reference)) in handles.into_iter().zip(&references).enumerate() {
                let doomed = doomed_mask & (1 << i) != 0;
                match h.wait() {
                    Ok(out) => {
                        assert!(!doomed, "seed {seed} spec {speculation}: job {i} survived");
                        assert_eq!(
                            &out.records, reference,
                            "seed {seed} spec {speculation}: job {i} differs from solo"
                        );
                    }
                    Err(JobError::Panicked(msg)) => {
                        assert!(doomed, "seed {seed} spec {speculation}: job {i} panicked");
                        assert!(msg.contains("injected map panic"), "{msg}");
                    }
                    Err(e) => panic!("seed {seed} spec {speculation}: job {i}: {e}"),
                }
            }
            server.shutdown();
            let snap = obs.snapshot().expect("observed");
            assert_eq!(
                snap.counter("engine.jobs_quarantined"),
                num_doomed as u64,
                "seed {seed} spec {speculation}"
            );
            assert_eq!(
                snap.counter("engine.jobs_completed"),
                (PREFIXES.len() - num_doomed) as u64,
                "seed {seed} spec {speculation}"
            );
        }
    }
}

/// An injected straggler makes its claims miss the deadline: rivals
/// speculatively re-execute the block, the first result wins, and the
/// output is still exact. The whole recovery is visible in the metrics.
#[test]
fn straggler_triggers_speculation_with_exact_output() {
    let s = store();
    let reference = solo("", &s);
    let mut cfg = ServerConfig::new(2, 3);
    cfg.obs = Obs::new();
    cfg.ft = FtConfig {
        deadline_floor: Duration::from_millis(2),
        deadline_slack: 1.5,
        ..FtConfig::resilient()
    };
    // Worker 0 sleeps 15 ms per block for the whole run: far past the
    // deadline, so every block it claims is re-executed by a rival.
    cfg.faults = Some(FaultPlan {
        faults: vec![EngineFault::SlowWorker {
            worker: 0,
            from_iter: 0,
            until_iter: u64::MAX,
            delay_us: 15_000,
        }],
    });
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(s, cfg);
    let out = server
        .submit(Count(String::new()))
        .wait()
        .expect("job completed despite the straggler");
    assert_eq!(out.records, reference, "speculation must not change output");
    server.shutdown();

    let snap = obs.snapshot().expect("observed");
    assert!(
        snap.counter("engine.tasks_speculated") > 0,
        "the straggler's claims must trigger speculation: {:?}",
        snap.counters
    );
    assert!(
        snap.counter("engine.speculation_wins") > 0,
        "some rival re-execution must win: {:?}",
        snap.counters
    );
    assert_eq!(snap.counter("engine.jobs_quarantined"), 0);
}

/// A job whose `map` genuinely takes a while — every call sleeps — so the
/// speculative path's per-block cost EWMA sees multi-millisecond blocks.
struct Sleepy;

impl MapReduceJob for Sleepy {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        std::thread::sleep(Duration::from_millis(5));
        for w in line.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
}

/// Satellite (b) regression: the speculative deadline must warm up from
/// the first committed blocks instead of running a whole segment at the
/// configured floor. Six genuinely-slow blocks (5 ms each) under a 2 ms
/// floor: with a cold deadline the tail block's claim looks expired the
/// moment the other worker goes idle, so it gets speculated; with the
/// warm-up fix the deadline is refreshed to ≈ EWMA × slack (≈ 40 ms)
/// after the first commit, and no speculation ever fires.
#[test]
fn warm_deadline_prevents_cold_start_speculation() {
    let s = BlockStore::new(
        (0..6)
            .map(|i| format!("word{i} word{i} tail\n"))
            .collect(),
    );
    let reference = run_job(
        &Sleepy,
        &s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    )
    .records;

    // One segment of all 6 blocks, 2 workers: the segment starts with an
    // empty EWMA, which is exactly the cold-start window under test.
    let mut cfg = ServerConfig::new(6, 2);
    cfg.obs = Obs::new();
    cfg.ft = FtConfig {
        deadline_floor: Duration::from_millis(2),
        deadline_slack: 8.0,
        // This test pins the legacy deadline machinery (the crash-recovery
        // fallback): with work-assisting on, the idle worker re-executes
        // the healthy-but-slow tail on purpose, which is exactly what
        // deadline speculation must NOT do.
        assist: false,
        ..FtConfig::resilient()
    };
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(s, cfg);
    let out = server.submit(Sleepy).wait().expect("job completed");
    assert_eq!(out.records, reference);
    server.shutdown();

    let snap = obs.snapshot().expect("observed");
    assert_eq!(
        snap.counter("engine.tasks_speculated"),
        0,
        "healthy slow blocks must not be speculated once the deadline \
         warms up from the first commits: {:?}",
        snap.counters
    );
}

/// Satellite (d) for the adaptive tentpole: a 50-seed chaos sweep with
/// adaptive sizing on and every plan guaranteed at least one straggler
/// (`min_slow: 1`). Segment boundaries move mid-scan — every seed must
/// emit at least one `segment_resized`, every resize must land inside the
/// configured clamp, and all four jobs' outputs must stay byte-identical
/// to their solo runs.
#[test]
fn adaptive_resizing_under_chaos_stays_byte_identical() {
    let s = store();
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();
    let chaos = EngineChaosConfig {
        num_workers: 3,
        num_jobs: PREFIXES.len() as u64,
        horizon_iters: s.num_blocks().div_ceil(4) as u64,
        // Adaptive sizing changes how many blocks each segment iteration
        // covers, so iteration-indexed faults fire at different blocks
        // than in a fixed-size run — which is fine for slow/drop faults
        // (outcome-neutral) but would make panics and coordinator kills
        // nondeterministic oracles. Keep only the neutral faults.
        min_slow: 1,
        max_map_panics: 0,
        max_reduce_faults: 0,
        coordinator_kill_prob: 0.0,
        ..EngineChaosConfig::default()
    };
    const MIN_BPS: u64 = 1;
    const MAX_BPS: u64 = 8;

    for seed in 0u64..50 {
        let plan = FaultPlan::generate(seed, &chaos);
        let mut cfg = ServerConfig::new(4, 3);
        cfg.obs = Obs::new();
        cfg.ft = FtConfig {
            deadline_floor: Duration::from_millis(3),
            ..FtConfig::resilient()
        };
        cfg.adaptive = AdaptiveConfig {
            enabled: true,
            target_cadence: Duration::from_millis(2),
            min_blocks_per_segment: MIN_BPS as usize,
            max_blocks_per_segment: MAX_BPS as usize,
        };
        cfg.faults = Some(plan);
        let obs = cfg.obs.clone();
        let server = SharedScanServer::with_config(s.clone(), cfg);
        let handles = server.submit_all(PREFIXES.iter().map(|p| Count(p.to_string())).collect());
        for (i, (h, reference)) in handles.into_iter().zip(&references).enumerate() {
            let out = h.wait().unwrap_or_else(|e| {
                panic!("seed {seed}: job {i} failed under neutral faults: {e}")
            });
            assert_eq!(
                &out.records, reference,
                "seed {seed}: job {i} differs from solo while segments resized"
            );
        }
        server.shutdown();

        let snap = obs.snapshot().expect("observed");
        assert!(
            snap.counter("engine.segment_resizes") >= 1,
            "seed {seed}: the straggler must perturb measured cost enough \
             to move the segment size at least once: {:?}",
            snap.counters
        );
        let core = obs.core().expect("observed");
        let events = core.tracer.drain();
        for ev in events.iter().filter(|e| e.name == "segment_resized") {
            assert!(
                (MIN_BPS..=MAX_BPS).contains(&ev.ids.seg),
                "seed {seed}: resize to {} escapes the clamp [{MIN_BPS}, {MAX_BPS}]",
                ev.ids.seg
            );
            assert_ne!(
                ev.ids.seg, ev.ids.n,
                "seed {seed}: degenerate resize to the current size"
            );
        }
    }
}

/// Satellite (c): `shutdown()` resolves every outstanding handle. Jobs
/// whose revolution completes before the coordinator drains keep their
/// output; anything still pending when the server is gone aborts — and
/// `wait()` never hangs either way.
#[test]
fn shutdown_resolves_every_handle() {
    let s = store();
    let reference = solo("", &s);

    // Submitted before shutdown: the coordinator finishes their
    // revolutions, so they complete with exact output.
    let server = SharedScanServer::new(s.clone(), 2, 2);
    let handles: Vec<_> = (0..3).map(|_| server.submit(Count(String::new()))).collect();
    server.shutdown();
    for h in handles {
        let out = h.wait().expect("drained at shutdown");
        assert_eq!(out.records, reference);
    }

    // Dropped without shutdown(): same drain path, nothing hangs.
    let server = SharedScanServer::new(s.clone(), 2, 2);
    let h = server.submit(Count(String::new()));
    drop(server);
    assert_eq!(
        h.wait().expect("drained at drop").records,
        reference,
        "drop-without-shutdown must still drain"
    );

    // Submitted after the coordinator died (injected kill): the scan will
    // never run again, so the handle resolves to Aborted instead of
    // hanging forever.
    let mut cfg = ServerConfig::new(2, 2);
    cfg.faults = Some(FaultPlan {
        faults: vec![EngineFault::KillCoordinator { at_iter: 0 }],
    });
    let server = SharedScanServer::with_config(s, cfg);
    let early = server.submit(Count(String::new()));
    assert_eq!(early.wait(), Err(JobError::Aborted));
    // The kill has certainly happened once the first handle resolved.
    let late = server.submit(Count(String::new()));
    assert_eq!(late.wait(), Err(JobError::Aborted));
    server.shutdown();
}

/// Companion to [`shutdown_resolves_every_handle`] for the submit-racing-
/// shutdown window, via the public API only: shut down first, then verify
/// a clone-side submit aborts. `SharedScanServer::shutdown` consumes the
/// server, so the race is driven from a second thread holding the server.
#[test]
fn submit_racing_shutdown_aborts_instead_of_hanging() {
    for _ in 0..20 {
        let s = BlockStore::from_text("alpha beta\ngamma\n", 8);
        let server = SharedScanServer::new(s, 1, 1);
        let h = server.submit(Count(String::new()));
        // Shut down while the first job may still be mid-revolution, then
        // observe that its handle resolves either way.
        server.shutdown();
        match h.wait() {
            Ok(out) => assert!(out.records.contains_key("alpha")),
            Err(JobError::Aborted) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
