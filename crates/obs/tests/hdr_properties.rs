//! Property tests of the HDR histogram: the quantile estimate must stay
//! within the configured relative-error bound of a sorted-vector oracle,
//! and snapshot merging must behave like a commutative monoid — those two
//! properties are what make windowed SLO reporting trustworthy
//! (percentiles of merged windows == percentiles of the union).

use proptest::prelude::*;
use s3_obs::hdr::{HdrHistogram, HdrSnapshot, WindowedHdr};

fn record_all(values: &[u64], bits: u32) -> HdrSnapshot {
    let h = HdrHistogram::with_bits(bits);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every quantile estimate is within the advertised relative error of
    /// the exact order statistic (plus half a unit: values inside the
    /// exact range report bucket midpoints at `v + 0.5`).
    #[test]
    fn quantiles_match_sorted_oracle_within_relative_error(
        values in prop::collection::vec(0u64..1_000_000_000, 1..400),
        bits in 4u32..10,
    ) {
        let snap = record_all(&values, bits);
        let err = snap.relative_error();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let target = ((q * n).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[target - 1] as f64;
            let est = snap.quantile(q);
            prop_assert!(
                (est - oracle).abs() <= oracle * err + 0.5001,
                "q={q}: estimate {est} vs oracle {oracle} (bits={bits}, err={err})"
            );
        }
    }

    /// Merging is commutative and associative, and merging snapshots is
    /// indistinguishable from having recorded every value into one
    /// histogram — the property that makes per-window snapshots safely
    /// re-aggregable into any coarser view.
    #[test]
    fn merge_is_a_commutative_monoid_matching_union(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
        c in prop::collection::vec(0u64..1_000_000, 0..200),
        bits in 4u32..10,
    ) {
        let (sa, sb, sc) = (record_all(&a, bits), record_all(&b, bits), record_all(&c, bits));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        // Identity: merging with an empty snapshot changes nothing.
        prop_assert_eq!(sa.merge(&HdrSnapshot::empty(bits)), sa.clone());

        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(sa.merge(&sb).merge(&sc), record_all(&union, bits));
    }

    /// Rotation conserves observations: every recorded value is in exactly
    /// one closed window (or the live one), and the lifetime view equals
    /// their merge.
    #[test]
    fn windowed_rotation_conserves_observations(
        windows in prop::collection::vec(
            prop::collection::vec(1u64..100_000, 0..50),
            1..6,
        ),
        live in prop::collection::vec(1u64..100_000, 0..50),
    ) {
        let w = WindowedHdr::new(7, 16);
        for batch in &windows {
            for &v in batch {
                w.record(v);
            }
            w.rotate();
        }
        for &v in &live {
            w.record(v);
        }
        let total: usize = windows.iter().map(Vec::len).sum::<usize>() + live.len();
        let closed: u64 = w.windows().iter().map(|s| s.count).sum();
        prop_assert_eq!(closed as usize + live.len(), total);
        prop_assert_eq!(w.lifetime().count as usize, total);

        let union: Vec<u64> = windows.iter().flatten().chain(&live).copied().collect();
        prop_assert_eq!(w.lifetime(), record_all(&union, 7));
    }
}
