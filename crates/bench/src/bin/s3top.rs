//! `s3top` — live terminal dashboard over engine telemetry.
//!
//! Polls a [`MetricsSnapshot`] every refresh interval and renders rates
//! and **windowed** percentiles (from histogram-bucket deltas between
//! consecutive snapshots, interpolated with
//! [`quantile_from_buckets`]) — the last-interval view a since-start
//! snapshot cannot give. Two sources:
//!
//! - `s3top --demo` — spawn an in-process observed [`SharedScanServer`]
//!   with a background submitter and watch it (no setup, good for a
//!   first look and for CI);
//! - `s3top --url HOST:PORT` — scrape the Prometheus endpoint another
//!   process (e.g. `s3load --listen`) exposes, re-parsing the text
//!   exposition back into a snapshot.
//!
//! `--once` renders a single frame without clearing the screen, for CI
//! and piping; otherwise the dashboard redraws until `--frames` runs
//! out (or forever).
//!
//! ```text
//! cargo run --release -p s3-bench --bin s3top -- --demo
//! cargo run --release -p s3-bench --bin s3top -- --url 127.0.0.1:9184
//! ```

use s3_engine::{BlockStore, Obs, ServerConfig, SharedScanServer};
use s3_obs::metrics::{quantile_from_buckets, HistogramSnapshot, MetricsSnapshot};
use s3_obs::prom::{parse_prometheus, prom_name, scrape_text};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("s3top: {msg}");
    eprintln!("usage: s3top [--demo | --url HOST:PORT] [--interval-ms MS] [--frames N | --once]");
    std::process::exit(2);
}

enum Source {
    Demo {
        obs: Obs,
        stop: Arc<AtomicBool>,
        worker: Option<std::thread::JoinHandle<()>>,
    },
    Url(String),
}

impl Source {
    fn snap(&self) -> MetricsSnapshot {
        match self {
            Source::Demo { obs, .. } => obs.snapshot().expect("demo obs is on"),
            Source::Url(addr) => {
                let text = scrape_text(addr)
                    .unwrap_or_else(|e| fail(&format!("scrape {addr} failed: {e}")));
                parse_prometheus(&text)
            }
        }
    }

    fn label(&self) -> String {
        match self {
            Source::Demo { .. } => "demo (in-process)".into(),
            Source::Url(addr) => format!("http://{addr}/metrics"),
        }
    }
}

impl Drop for Source {
    fn drop(&mut self) {
        if let Source::Demo { stop, worker, .. } = self {
            stop.store(true, Ordering::Relaxed);
            if let Some(h) = worker.take() {
                let _ = h.join();
            }
        }
    }
}

/// Start an observed server plus a background submitter that keeps a
/// steady stream of jobs flowing until `stop` is raised.
fn demo_source() -> Source {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), 512 << 10);
    let store = BlockStore::from_text(&text, 4 << 10);
    let mut cfg = ServerConfig::new(2, 2);
    cfg.obs = Obs::new();
    let obs = cfg.obs.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let worker = std::thread::Builder::new()
        .name("s3top-demo-load".into())
        .spawn(move || {
            let server = SharedScanServer::with_config(store, cfg);
            let mut i = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let handles: Vec<_> = (0..3)
                    .map(|j| {
                        let p = format!("{}a", (b'b' + ((i + j) % 20) as u8) as char);
                        server.submit(PatternWordCount::prefix(p))
                    })
                    .collect();
                for h in handles {
                    let _ = h.wait();
                }
                i += 3;
                std::thread::sleep(Duration::from_millis(5));
            }
            server.shutdown();
        })
        .expect("spawn demo load");
    Source::Demo { obs, stop, worker: Some(worker) }
}

/// Percentiles of the observations recorded *between* two snapshots,
/// from per-bucket count deltas. Returns `(p50, p95, p99, n)`.
fn window_pctls(
    prev: Option<&HistogramSnapshot>,
    cur: &HistogramSnapshot,
) -> Option<(f64, f64, f64, u64)> {
    let edge = |le: &str| le.parse::<f64>().unwrap_or(f64::INFINITY);
    let prev_count = |le: &str| {
        prev.and_then(|p| p.buckets.iter().find(|b| b.le == le))
            .map(|b| b.count)
            .unwrap_or(0)
    };
    let pairs: Vec<(f64, u64)> = cur
        .buckets
        .iter()
        .map(|b| (edge(&b.le), b.count.saturating_sub(prev_count(&b.le))))
        .collect();
    let n: u64 = pairs.iter().map(|&(_, c)| c).sum();
    if n == 0 {
        return None;
    }
    // Lifetime min/max bound the interpolation; the window's true extremes
    // are inside them.
    let (min, max) = (cur.min as f64, cur.max as f64);
    let q = |q: f64| quantile_from_buckets(&pairs, min, max, q);
    Some((q(0.50), q(0.95), q(0.99), n))
}

struct Frame<'a> {
    prev: Option<&'a MetricsSnapshot>,
    cur: &'a MetricsSnapshot,
    dt_s: f64,
    up_s: f64,
    source: String,
}

/// Instrument lookups that work on both snapshot flavors: registry names
/// (`engine.jobs_submitted`) in demo mode, prom-sanitized names
/// (`s3_engine_jobs_submitted`) when re-parsed from a scrape.
fn counter(s: &MetricsSnapshot, name: &str) -> u64 {
    s.counters
        .get(name)
        .or_else(|| s.counters.get(&prom_name(name)))
        .copied()
        .unwrap_or(0)
}

fn gauge(s: &MetricsSnapshot, name: &str) -> i64 {
    s.gauges
        .get(name)
        .or_else(|| s.gauges.get(&prom_name(name)))
        .copied()
        .unwrap_or(0)
}

fn histogram<'a>(s: &'a MetricsSnapshot, name: &str) -> Option<&'a HistogramSnapshot> {
    s.histograms
        .get(name)
        .or_else(|| s.histograms.get(&prom_name(name)))
}

fn render(f: &Frame) -> String {
    let c = |name: &str| counter(f.cur, name);
    let rate = |name: &str| {
        let prev = f.prev.map(|p| counter(p, name)).unwrap_or(0);
        (c(name).saturating_sub(prev)) as f64 / f.dt_s
    };
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "s3top — {:<28} up {:>6.1} s   refresh {:>4.0} ms",
        f.source,
        f.up_s,
        f.dt_s * 1e3
    ));
    line(format!(
        "jobs    submitted {:<7} completed {:<7} active {:<4} quarantined {:<4} aborted {}",
        c("engine.jobs_submitted"),
        c("engine.jobs_completed"),
        gauge(f.cur, "engine.active_jobs"),
        c("engine.jobs_quarantined"),
        c("engine.jobs_aborted"),
    ));
    line(format!(
        "rates   submit {:>7.1}/s   complete {:>7.1}/s   segments {:>7.0}/s   scan {:>7.1} MB/s",
        rate("engine.jobs_submitted"),
        rate("engine.jobs_completed"),
        rate("engine.segments_scanned"),
        rate("engine.bytes_scanned") / 1e6,
    ));
    line(format!(
        "scan    segments {:<9} blocks {:<9} eff bps {:<4} assist ratio {:>5.1} %   excluded {}",
        c("engine.segments_scanned"),
        c("engine.blocks_scanned"),
        gauge(f.cur, "engine.effective_blocks_per_segment"),
        gauge(f.cur, "engine.assist_ratio") as f64 / 100.0,
        gauge(f.cur, "engine.excluded_workers"),
    ));
    for (label, name) in [
        ("admission", "engine.admission_latency_us"),
        ("job latency", "engine.job_latency_us"),
        ("cadence", "engine.segment_cadence_us"),
        ("segment scan", "engine.segment_scan_us"),
    ] {
        let cur = match histogram(f.cur, name) {
            Some(h) => h,
            None => continue,
        };
        let prev = f.prev.and_then(|p| histogram(p, name));
        match window_pctls(prev, cur) {
            Some((p50, p95, p99, n)) => line(format!(
                "window  {label:<13} p50 {p50:>8.0} µs   p95 {p95:>8.0} µs   p99 {p99:>8.0} µs   (n={n})"
            )),
            None => line(format!("window  {label:<13} (no samples this interval)")),
        }
    }
    for (label, name) in [
        ("admission", "engine.admission_latency_us"),
        ("job latency", "engine.job_latency_us"),
    ] {
        if let Some(h) = histogram(f.cur, name) {
            line(format!(
                "life    {label:<13} p50 {:>8.0} µs   p95 {:>8.0} µs   p99 {:>8.0} µs   (n={})",
                h.p50, h.p95, h.p99, h.count
            ));
        }
    }
    let mut pools = String::from("pools  ");
    for pool in ["scan", "reduce"] {
        let name = format!("pool.{pool}.busy_us");
        let prev = f.prev.map(|p| counter(p, &name)).unwrap_or(0);
        let busy_workers =
            (c(&name).saturating_sub(prev)) as f64 / (f.dt_s * 1e6);
        pools.push_str(&format!(" {pool} busy {busy_workers:>4.2} workers  "));
    }
    line(pools);
    out
}

fn main() {
    let mut demo = false;
    let mut url: Option<String> = None;
    let mut interval_ms = 500u64;
    let mut frames = u64::MAX;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--demo" => demo = true,
            "--url" => url = Some(args.next().unwrap_or_else(|| fail("--url needs HOST:PORT"))),
            "--interval-ms" => {
                interval_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("bad --interval-ms"))
            }
            "--frames" => {
                frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("bad --frames"))
            }
            "--once" => once = true,
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if demo && url.is_some() {
        fail("--demo and --url are mutually exclusive");
    }
    let source = if let Some(addr) = url { Source::Url(addr) } else if demo {
        demo_source()
    } else {
        fail("need --demo or --url HOST:PORT")
    };
    if once {
        frames = 1;
    }
    if interval_ms == 0 {
        fail("--interval-ms must be positive");
    }

    let t0 = Instant::now();
    let mut prev: Option<MetricsSnapshot> = None;
    let mut prev_at = t0;
    // Let the first interval elapse so frame 1 already has rates.
    std::thread::sleep(Duration::from_millis(interval_ms));
    for frame in 0..frames {
        let cur = source.snap();
        let now = Instant::now();
        let text = render(&Frame {
            prev: prev.as_ref(),
            cur: &cur,
            dt_s: now.duration_since(prev_at).as_secs_f64().max(1e-9),
            up_s: t0.elapsed().as_secs_f64(),
            source: source.label(),
        });
        if once {
            print!("{text}");
        } else {
            // Clear + home, then the frame.
            print!("\x1b[2J\x1b[H{text}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        prev = Some(cur);
        prev_at = now;
        if frame + 1 < frames {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    }
}
