//! The semantic heart of the paper, verified on real data at integration
//! scale: a merged shared scan produces byte-identical results to
//! independent execution, for both workload families, across thread and
//! reducer configurations.

use s3_engine::{run_job, run_merged, BlockStore, ExecConfig};
use s3_sim::SimRng;
use s3_workloads::jobs::{PatternWordCount, SelectionJob, WordPattern};
use s3_workloads::lineitem::LineItemGen;
use s3_workloads::text::TextGen;

fn text_store() -> BlockStore {
    let gen = TextGen::new(5000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(2024), 2 << 20);
    BlockStore::from_text(&text, 64 << 10)
}

fn lineitem_store() -> BlockStore {
    let text = LineItemGen::new().generate(&mut SimRng::seed_from_u64(2025), 2 << 20);
    BlockStore::from_text(&text, 64 << 10)
}

#[test]
fn ten_wordcount_jobs_share_one_scan_losslessly() {
    let store = text_store();
    let jobs: Vec<PatternWordCount> = vec![
        PatternWordCount::all(),
        PatternWordCount::prefix("b"),
        PatternWordCount::prefix("ta"),
        PatternWordCount::prefix("zzz"), // empty result
        PatternWordCount {
            pattern: WordPattern::Contains("an".into()),
        },
        PatternWordCount {
            pattern: WordPattern::Contains("q".into()),
        },
        PatternWordCount {
            pattern: WordPattern::Length(4),
        },
        PatternWordCount {
            pattern: WordPattern::Length(6),
        },
        PatternWordCount::prefix("da"),
        PatternWordCount::prefix("ma"),
    ];
    let cfg = ExecConfig {
        num_threads: 4,
        num_reducers: 7,
    ..ExecConfig::default()
    };
    let refs: Vec<&PatternWordCount> = jobs.iter().collect();
    let merged = run_merged(&refs, &store, &cfg);
    assert_eq!(merged.len(), 10);
    for (i, (job, m)) in jobs.iter().zip(&merged).enumerate() {
        let solo = run_job(job, &store, &cfg);
        assert_eq!(m.records, solo.records, "job {i} ({:?})", job.pattern);
        assert_eq!(m.stats.map_output_records, solo.stats.map_output_records);
    }
}

#[test]
fn selection_jobs_share_one_scan_losslessly() {
    let store = lineitem_store();
    let jobs: Vec<SelectionJob> = (0..6)
        .map(|i| SelectionJob {
            quantity_threshold: 10 + i * 8,
        })
        .collect();
    let cfg = ExecConfig::default();
    let refs: Vec<&SelectionJob> = jobs.iter().collect();
    let merged = run_merged(&refs, &store, &cfg);
    for (job, m) in jobs.iter().zip(&merged) {
        let solo = run_job(job, &store, &cfg);
        assert_eq!(
            m.records, solo.records,
            "threshold {}",
            job.quantity_threshold
        );
    }
    // Monotonicity: higher threshold selects a subset.
    for w in merged.windows(2) {
        assert!(w[1].records.len() <= w[0].records.len());
        for k in w[1].records.keys() {
            assert!(w[0].records.contains_key(k));
        }
    }
}

#[test]
fn equivalence_is_configuration_independent() {
    // Outputs must not depend on threads or reducer counts — merged or not.
    let store = text_store();
    let job = PatternWordCount::prefix("ba");
    let reference = run_job(
        &job,
        &store,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 1,
        ..ExecConfig::default()
        },
    );
    for threads in [2, 8] {
        for reducers in [3, 16] {
            let cfg = ExecConfig {
                num_threads: threads,
                num_reducers: reducers,
            ..ExecConfig::default()
            };
            let solo = run_job(&job, &store, &cfg);
            assert_eq!(solo.records, reference.records, "solo {threads}x{reducers}");
            let merged = run_merged(&[&job], &store, &cfg);
            assert_eq!(
                merged[0].records, reference.records,
                "merged {threads}x{reducers}"
            );
        }
    }
}

#[test]
fn shared_scan_reads_each_byte_once() {
    let store = text_store();
    let jobs = [
        PatternWordCount::prefix("a"),
        PatternWordCount::prefix("b"),
        PatternWordCount::prefix("d"),
    ];
    let refs: Vec<&PatternWordCount> = jobs.iter().collect();
    let merged = run_merged(&refs, &store, &ExecConfig::default());
    for m in &merged {
        assert_eq!(m.stats.bytes_scanned as usize, store.total_bytes());
        assert_eq!(m.stats.blocks_scanned as usize, store.num_blocks());
    }
}
