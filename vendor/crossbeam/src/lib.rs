//! Offline vendored subset of `crossbeam`: scoped threads, implemented on
//! `std::thread::scope`.
//!
//! Mirrors the call shape this workspace uses:
//!
//! ```
//! let outputs: Vec<u32> = crossbeam::scope(|s| {
//!     let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! })
//! .unwrap();
//! assert_eq!(outputs, vec![0, 2, 4, 6]);
//! ```
//!
//! Divergence from real crossbeam: the argument passed to a `spawn` closure
//! is an opaque [`NestedScope`] that cannot spawn (all call sites here
//! ignore it as `|_|`), and a panic in an unjoined child propagates as a
//! panic out of [`scope`] rather than an `Err`.

use std::any::Any;

/// Scope handle: spawn threads that may borrow from the enclosing stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures in lieu of a re-entrant scope.
pub struct NestedScope {
    _private: (),
}

/// Handle to a scoped thread, joinable within the scope.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread; `Err` carries the panic payload if it panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure's argument exists only for
    /// signature compatibility with crossbeam (`|_| ...`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&NestedScope { _private: () })),
        }
    }
}

/// Run `f` with a scope whose threads are all joined before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_panics() {
        let r = super::scope(|s| s.spawn(|_| panic!("boom")).join().is_err()).expect("scope");
        assert!(r);
    }
}
