//! HDR-style log-linear histograms with bounded relative error, mergeable
//! snapshots, and a sliding-window view.
//!
//! The fixed-bucket [`Histogram`](crate::metrics::Histogram) in
//! [`metrics`](crate::metrics) is built for *cumulative* since-process-start
//! aggregates on the engine hot path: power-of-two bounds, ~2× resolution,
//! interpolated percentiles. That is the wrong shape for SLO reporting on
//! open-loop runs, which needs (a) percentiles with a *guaranteed* error
//! bound (p999 of a latency distribution interpolated inside a 2× bucket
//! can be off by almost 100%), and (b) *windowed* views — p99 over the last
//! few seconds, not since startup.
//!
//! [`HdrHistogram`] uses the classic HdrHistogram bucket layout: values
//! below `2^sub_bucket_bits` are recorded **exactly** (unit-width buckets),
//! and each further power of two is split into `2^(sub_bucket_bits-1)`
//! equal sub-buckets, so the bucket width never exceeds
//! `value / 2^(sub_bucket_bits-1)`. Reported quantiles are bucket midpoints
//! clamped to the observed min/max, which bounds the relative error by
//! [`relative_error`](HdrSnapshot::relative_error) =
//! `2 / 2^sub_bucket_bits` (1.56% at the default 7 bits). The whole u64
//! range is covered with ~3.8k slots at 7 bits — ~30 KiB per histogram.
//!
//! [`HdrSnapshot`]s are plain sparse bucket vectors: [`merge`]d
//! associatively and commutatively (bucket-count addition), so per-window,
//! per-shard, or per-node snapshots combine into any coarser view without
//! re-reading raw samples. [`WindowedHdr`] builds the sliding window on
//! top: a live histogram that [`rotate`](WindowedHdr::rotate) atomically
//! drains into a ring of closed per-window snapshots.
//!
//! [`merge`]: HdrSnapshot::merge
//!
//! Recording is a handful of relaxed atomic RMWs — lock-free and
//! allocation-free, but (unlike `metrics::Histogram`) **not** sharded per
//! thread: these are recorded at job granularity (thousands/sec), not block
//! granularity (millions/sec), and a single copy keeps snapshots cheap.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Default `sub_bucket_bits`: values < 128 exact, relative error ≤ 1.56%.
pub const DEFAULT_SUB_BUCKET_BITS: u32 = 7;

/// Number of slots needed to cover the full u64 range at `bits`.
fn slot_count(bits: u32) -> usize {
    let sub = 1usize << bits;
    // Bucket 0 has `sub` unit slots; each of the remaining 64-bits
    // powers of two has sub/2 slots.
    sub + (64 - bits as usize) * (sub / 2)
}

/// Slot index for `value` at `bits` sub-bucket bits.
#[inline]
fn index_of(value: u64, bits: u32) -> usize {
    let sub = 1u64 << bits;
    if value < sub {
        value as usize
    } else {
        // `b` = how many doublings past the exact range the value sits.
        let b = (64 - bits) - value.leading_zeros();
        let base = sub as usize + (b as usize - 1) * (sub as usize / 2);
        base + ((value >> b) - sub / 2) as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by slot `idx` at `bits`.
fn range_of(idx: usize, bits: u32) -> (u64, u64) {
    let sub = 1usize << bits;
    if idx < sub {
        (idx as u64, idx as u64)
    } else {
        let b = ((idx - sub) / (sub / 2) + 1) as u32;
        let off = ((idx - sub) % (sub / 2) + sub / 2) as u64;
        let lo = off << b;
        // `lo + 2^b` can momentarily hit 2^64 for the topmost slot, so
        // form the width-minus-one first.
        (lo, lo + ((1u64 << b) - 1))
    }
}

/// A log-linear histogram over the full `u64` range.
///
/// See the [module docs](self) for the bucket layout and error bound.
pub struct HdrHistogram {
    bits: u32,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX until first observation
    max: AtomicU64,
}

impl HdrHistogram {
    /// A histogram with the [default](DEFAULT_SUB_BUCKET_BITS) precision.
    pub fn new() -> Self {
        HdrHistogram::with_bits(DEFAULT_SUB_BUCKET_BITS)
    }

    /// A histogram with `2^bits` exact values and relative error
    /// `2 / 2^bits`. `bits` is clamped to `[2, 14]` (0.5 KiB – 132 KiB).
    pub fn with_bits(bits: u32) -> Self {
        let bits = bits.clamp(2, 14);
        HdrHistogram {
            bits,
            counts: (0..slot_count(bits)).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (relaxed RMWs, lock- and allocation-free).
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[index_of(value, self.bits)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Non-destructive aggregate of the current contents.
    pub fn snapshot(&self) -> HdrSnapshot {
        self.collect(false)
    }

    /// Drain the histogram into a snapshot, resetting it to empty.
    ///
    /// Observations recorded concurrently with a drain land in either the
    /// returned snapshot or the fresh histogram (statistics, not
    /// synchronization — none are lost or double-counted per slot, but
    /// `count`/`sum`/bucket totals may straddle the boundary).
    pub fn drain(&self) -> HdrSnapshot {
        self.collect(true)
    }

    fn collect(&self, reset: bool) -> HdrSnapshot {
        let mut counts = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            let v = if reset {
                c.swap(0, Ordering::Relaxed)
            } else {
                c.load(Ordering::Relaxed)
            };
            if v > 0 {
                counts.push((i as u32, v));
            }
        }
        let (count, sum, min, max) = if reset {
            (
                self.count.swap(0, Ordering::Relaxed),
                self.sum.swap(0, Ordering::Relaxed),
                self.min.swap(u64::MAX, Ordering::Relaxed),
                self.max.swap(0, Ordering::Relaxed),
            )
        } else {
            (
                self.count.load(Ordering::Relaxed),
                self.sum.load(Ordering::Relaxed),
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        HdrSnapshot {
            sub_bucket_bits: self.bits,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            counts,
        }
    }
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

/// A serializable, mergeable aggregate of one [`HdrHistogram`] (or of a
/// merge of several). Buckets are sparse `(slot, count)` pairs in slot
/// order.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct HdrSnapshot {
    /// Precision the slots were recorded at; merges require equal bits.
    pub sub_bucket_bits: u32,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Occupied slots as `(slot_index, count)`, ascending by slot.
    pub counts: Vec<(u32, u64)>,
}

impl HdrSnapshot {
    /// An empty snapshot at `bits` precision.
    pub fn empty(bits: u32) -> Self {
        HdrSnapshot {
            sub_bucket_bits: bits.clamp(2, 14),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            counts: Vec::new(),
        }
    }

    /// Guaranteed bound on `|reported - true| / true` for any quantile:
    /// `2 / 2^sub_bucket_bits`.
    pub fn relative_error(&self) -> f64 {
        2.0 / (1u64 << self.sub_bucket_bits) as f64
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`): the smallest recorded bucket whose
    /// cumulative count reaches `ceil(q·n)`, reported as the bucket
    /// midpoint clamped to `[min, max]`. Exact for values below
    /// `2^sub_bucket_bits` and within [`relative_error`] otherwise; 0 when
    /// empty.
    ///
    /// [`relative_error`]: HdrSnapshot::relative_error
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(slot, c) in &self.counts {
            seen += c;
            if seen >= target {
                let (lo, hi) = range_of(slot as usize, self.sub_bucket_bits);
                let mid = (lo as f64 + hi as f64) / 2.0;
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Merge two snapshots (element-wise bucket addition). Associative and
    /// commutative; both operands must share `sub_bucket_bits`.
    ///
    /// # Panics
    /// If the precisions differ.
    pub fn merge(&self, other: &HdrSnapshot) -> HdrSnapshot {
        assert_eq!(
            self.sub_bucket_bits, other.sub_bucket_bits,
            "cannot merge HDR snapshots of different precision"
        );
        let mut slots: BTreeMap<u32, u64> = self.counts.iter().copied().collect();
        for &(slot, c) in &other.counts {
            *slots.entry(slot).or_insert(0) += c;
        }
        let count = self.count + other.count;
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        HdrSnapshot {
            sub_bucket_bits: self.sub_bucket_bits,
            count,
            sum: self.sum + other.sum,
            min,
            max: self.max.max(other.max),
            counts: slots.into_iter().collect(),
        }
    }

    /// The standard SLO digest of this snapshot.
    pub fn summary(&self) -> HdrSummary {
        HdrSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Serializable p50/p95/p99/p999 digest of an [`HdrSnapshot`], the unit of
/// the `slo` section in `BENCH_engine.json`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HdrSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// A sliding-window HDR recorder: one live [`HdrHistogram`] plus a bounded
/// ring of closed per-window snapshots.
///
/// The caller drives window boundaries: record into the live histogram from
/// any thread (lock-free), and call [`rotate`](WindowedHdr::rotate) on each
/// window tick to close the current window. Closed windows merge into any
/// coarser view ([`merged_last`](WindowedHdr::merged_last)), and
/// [`lifetime`](WindowedHdr::lifetime) folds everything — closed and live —
/// into the since-start aggregate.
pub struct WindowedHdr {
    live: HdrHistogram,
    closed: Mutex<VecDeque<HdrSnapshot>>,
    capacity: usize,
}

impl WindowedHdr {
    /// A recorder at `bits` precision retaining up to `windows` closed
    /// windows (older ones are discarded; at least 1 is kept).
    pub fn new(bits: u32, windows: usize) -> Self {
        WindowedHdr {
            live: HdrHistogram::with_bits(bits),
            closed: Mutex::new(VecDeque::new()),
            capacity: windows.max(1),
        }
    }

    /// Record one observation into the current (live) window.
    #[inline]
    pub fn record(&self, value: u64) {
        self.live.record(value);
    }

    /// Close the current window: drain the live histogram into a snapshot,
    /// append it to the ring (evicting the oldest beyond capacity), and
    /// return it.
    pub fn rotate(&self) -> HdrSnapshot {
        let snap = self.live.drain();
        let mut closed = self.closed.lock();
        if closed.len() == self.capacity {
            closed.pop_front();
        }
        closed.push_back(snap.clone());
        snap
    }

    /// Merge of the most recent `n` **closed** windows (empty snapshot if
    /// none have closed yet).
    pub fn merged_last(&self, n: usize) -> HdrSnapshot {
        let closed = self.closed.lock();
        let skip = closed.len().saturating_sub(n);
        closed
            .iter()
            .skip(skip)
            .fold(HdrSnapshot::empty(self.live.bits), |acc, w| acc.merge(w))
    }

    /// All retained closed windows, oldest first.
    pub fn windows(&self) -> Vec<HdrSnapshot> {
        self.closed.lock().iter().cloned().collect()
    }

    /// Everything recorded and still retained: all closed windows plus the
    /// live one. (Windows evicted past the ring capacity are gone.)
    pub fn lifetime(&self) -> HdrSnapshot {
        self.merged_last(usize::MAX).merge(&self.live.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sub_bucket_range() {
        let h = HdrHistogram::with_bits(7);
        for v in [0, 1, 17, 127] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 127.0);
        assert_eq!(s.count, 4);
        assert_eq!((s.min, s.max), (0, 127));
    }

    #[test]
    fn relative_error_bound_holds_for_large_values() {
        let h = HdrHistogram::with_bits(7);
        let v = 1_234_567_890u64;
        h.record(v);
        let s = h.snapshot();
        // min==max clamp makes a single sample exact.
        assert_eq!(s.quantile(0.99), v as f64);

        let h = HdrHistogram::with_bits(7);
        for x in [1_000_000u64, 1_500_000, 2_000_000, 123_456_789] {
            h.record(x);
        }
        let s = h.snapshot();
        let p = s.quantile(0.75);
        let oracle = 2_000_000.0;
        assert!(
            (p - oracle).abs() <= oracle * s.relative_error(),
            "p75 {p} vs {oracle} (bound {})",
            oracle * s.relative_error()
        );
    }

    #[test]
    fn index_and_range_are_inverse() {
        for bits in [2u32, 5, 7, 10, 14] {
            for v in [
                0u64,
                1,
                2,
                100,
                127,
                128,
                129,
                1023,
                1024,
                65_535,
                1 << 30,
                (1 << 40) + 12345,
                u64::MAX - 1,
                u64::MAX,
            ] {
                let idx = index_of(v, bits);
                assert!(idx < slot_count(bits), "idx {idx} bits {bits} v {v}");
                let (lo, hi) = range_of(idx, bits);
                assert!(lo <= v && v <= hi, "v {v} not in [{lo}, {hi}] bits {bits}");
            }
        }
    }

    #[test]
    fn merge_is_equivalent_to_recording_together() {
        let a = HdrHistogram::new();
        let b = HdrHistogram::new();
        let both = HdrHistogram::new();
        for v in [3u64, 900, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [45_000u64, 2, 900] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
    }

    #[test]
    fn windowed_rotate_and_merge() {
        let w = WindowedHdr::new(7, 3);
        w.record(10);
        w.record(20);
        let w1 = w.rotate();
        assert_eq!(w1.count, 2);
        w.record(30);
        let w2 = w.rotate();
        assert_eq!(w2.count, 1);
        let last2 = w.merged_last(2);
        assert_eq!(last2.count, 3);
        assert_eq!((last2.min, last2.max), (10, 30));
        w.record(99);
        assert_eq!(w.lifetime().count, 4);
        // Ring evicts beyond capacity.
        for _ in 0..5 {
            w.rotate();
        }
        assert_eq!(w.windows().len(), 3);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let s = HdrSnapshot::empty(7);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.merge(&HdrSnapshot::empty(7)).count, 0);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let h = HdrHistogram::new();
        for v in [1u64, 2, 3, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HdrSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
