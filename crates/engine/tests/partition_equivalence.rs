//! Property-based proof that skew-aware weighted partitioning is a pure
//! scheduling change: for any corpus, any thread count, either scan path,
//! and any split factor, [`PartitionMode::Weighted`] produces output
//! record-identical to [`PartitionMode::Hash`] — same keys, same values,
//! same stats. Only the shard boundaries (and therefore tail latency)
//! move.

use proptest::prelude::*;
use s3_engine::{
    run_job, run_job_legacy, run_merged, run_merged_legacy, BlockStore, ExecConfig, MapReduceJob,
    PartitionMode,
};

/// Prefix wordcount with the fold-combiner and per-token map fast paths
/// switchable per instance, so one batch covers all three accumulator
/// shapes the sketch observes (fold arenas, token arenas, buffered).
struct FlexPrefix {
    prefix: String,
    fold: bool,
    token: bool,
}

impl MapReduceJob for FlexPrefix {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.prefix) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        self.fold
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
    fn map_is_per_token(&self) -> bool {
        self.token
    }
    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.prefix) {
            emit(token.to_string(), 1);
        }
    }
}

/// A word strategy over a tiny alphabet so prefixes collide often and a
/// handful of head keys dominate — miniature Zipf, which is exactly the
/// regime weighted partitioning reshapes.
fn word() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c']), 1..5)
        .prop_map(|cs| cs.into_iter().collect())
}

fn corpus() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(word(), 1..12), 1..60).prop_map(|lines| {
        lines
            .into_iter()
            .map(|ws| ws.join(" "))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    })
}

/// The fixed thread grid from the issue: solo (private claim counter),
/// moderate, and oversubscribed relative to the test corpus.
const THREADS: [usize; 3] = [1, 4, 8];

fn cfg(threads: usize, reducers: usize, partition: PartitionMode) -> ExecConfig {
    ExecConfig {
        num_threads: threads,
        num_reducers: reducers,
        partition,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Weighted ≡ hash for solo jobs across the thread grid and both scan
    /// paths (kernel byte-slice and legacy `&str`), over all accumulator
    /// shapes.
    #[test]
    fn weighted_equals_hash_solo(
        text in corpus(),
        block_bytes in 8usize..256,
        prefix in word(),
        flags in 0u32..4,
        reducers in 1usize..9,
        split_x1000 in prop::sample::select(vec![0u32, 1000, 1250, 3000]),
    ) {
        let store = BlockStore::from_text(&text, block_bytes);
        let job = FlexPrefix {
            prefix,
            fold: flags & 1 == 1,
            token: flags & 2 == 2,
        };
        let weighted = PartitionMode::Weighted { split_factor_x1000: split_x1000 };
        for threads in THREADS {
            let hash_cfg = cfg(threads, reducers, PartitionMode::Hash);
            let wtd_cfg = cfg(threads, reducers, weighted);
            let reference = run_job(&job, &store, &hash_cfg);
            for (label, out) in [
                ("kernel", run_job(&job, &store, &wtd_cfg)),
                ("legacy", run_job_legacy(&job, &store, &wtd_cfg)),
            ] {
                prop_assert_eq!(&out.records, &reference.records,
                    "{} path, threads {} split {}", label, threads, split_x1000);
                prop_assert_eq!(out.stats.map_output_records, reference.stats.map_output_records);
                prop_assert_eq!(out.stats.bytes_scanned, reference.stats.bytes_scanned);
            }
        }
    }

    /// Weighted ≡ hash for merged batches mixing fold/token/buffered jobs,
    /// across the thread grid and both scan paths.
    #[test]
    fn weighted_equals_hash_merged(
        text in corpus(),
        block_bytes in 8usize..256,
        prefixes in prop::collection::vec(word(), 1..5),
        flag_bits in 0u32..256,
        reducers in 1usize..9,
    ) {
        let store = BlockStore::from_text(&text, block_bytes);
        let jobs: Vec<FlexPrefix> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| FlexPrefix {
                prefix: p.clone(),
                fold: (flag_bits >> (2 * i)) & 1 == 1,
                token: (flag_bits >> (2 * i + 1)) & 1 == 1,
            })
            .collect();
        let refs: Vec<&FlexPrefix> = jobs.iter().collect();
        for threads in THREADS {
            let hash_cfg = cfg(threads, reducers, PartitionMode::Hash);
            let wtd_cfg = cfg(threads, reducers, PartitionMode::weighted());
            let reference = run_merged(&refs, &store, &hash_cfg);
            for (label, merged) in [
                ("kernel", run_merged(&refs, &store, &wtd_cfg)),
                ("legacy", run_merged_legacy(&refs, &store, &wtd_cfg)),
            ] {
                for ((job, m), r) in jobs.iter().zip(&merged).zip(&reference) {
                    prop_assert_eq!(&m.records, &r.records,
                        "{} path, prefix {:?} threads {} fold={} token={}",
                        label, &job.prefix, threads, job.fold, job.token);
                    prop_assert_eq!(m.stats.map_output_records, r.stats.map_output_records);
                }
            }
        }
    }

    /// Weighted ≡ hash through the external (spilling) engine, where the
    /// plan regroups fine-grained spill bins instead of routing records.
    #[test]
    fn weighted_equals_hash_external(
        text in corpus(),
        block_bytes in 8usize..256,
        spill_records in 1usize..64,
        threads in prop::sample::select(THREADS.to_vec()),
        reducers in 1usize..6,
    ) {
        use s3_engine::{run_job_external, ExternalConfig};
        let store = BlockStore::from_text(&text, block_bytes);
        let job = FlexPrefix { prefix: "a".into(), fold: false, token: false };
        let reference = run_job(&job, &store, &cfg(threads, reducers, PartitionMode::Hash));
        let (out, _) = run_job_external(&job, &store, &ExternalConfig {
            exec: cfg(threads, reducers, PartitionMode::weighted()),
            spill_records,
            tmp_dir: None,
        }).expect("spill io");
        prop_assert_eq!(out.records, reference.records);
        prop_assert_eq!(out.stats.map_output_records, reference.stats.map_output_records);
    }

    /// Weighted ≡ hash through the shared-scan server: the finish pipeline
    /// builds the plan from the accumulated combiner state and may spawn
    /// extra reduce tasks, yet the published relation never moves.
    #[test]
    fn weighted_equals_hash_server(
        text in corpus(),
        block_bytes in 8usize..128,
        prefixes in prop::collection::vec(word(), 1..4),
        flag_bits in 0u32..64,
        threads in prop::sample::select(THREADS.to_vec()),
        split_x1000 in prop::sample::select(vec![0u32, 1000]),
    ) {
        use s3_engine::{ServerConfig, SharedScanServer};
        let store = BlockStore::from_text(&text, block_bytes);
        let base = cfg(1, 3, PartitionMode::Hash);
        let refs: Vec<_> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let job = FlexPrefix {
                    prefix: p.clone(),
                    fold: (flag_bits >> (2 * i)) & 1 == 1,
                    token: (flag_bits >> (2 * i + 1)) & 1 == 1,
                };
                run_job(&job, &store, &base).records
            })
            .collect();

        let mut scfg = ServerConfig::new(4, threads);
        scfg.partition = PartitionMode::Weighted { split_factor_x1000: split_x1000 };
        let server = SharedScanServer::with_config(store, scfg);
        let handles = server.submit_all(
            prefixes
                .iter()
                .enumerate()
                .map(|(i, p)| FlexPrefix {
                    prefix: p.clone(),
                    fold: (flag_bits >> (2 * i)) & 1 == 1,
                    token: (flag_bits >> (2 * i + 1)) & 1 == 1,
                })
                .collect(),
        );
        for ((h, reference), p) in handles.into_iter().zip(&refs).zip(&prefixes) {
            let out = h.wait().expect("no faults injected");
            prop_assert_eq!(&out.records, reference,
                "prefix {:?} threads {} split {}", p, threads, split_x1000);
        }
        server.shutdown();
    }
}
