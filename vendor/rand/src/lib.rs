//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without network access to
//! crates.io, so the handful of `rand` items it actually uses are
//! re-implemented here: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait, and [`rngs::SmallRng`].
//!
//! `SmallRng` is the same algorithm the real crate uses on 64-bit
//! platforms — xoshiro256++ seeded through SplitMix64 — so seeded
//! streams are high quality and stable across upgrades of this shim.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (same
    /// scheme as `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sample;
pub use sample::SampleUniform;

/// Types producible by [`Rng::gen`] from uniform random bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as in rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (integers: full range; floats: `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: sample::IntoUniformRange<T>,
    {
        let (lo, hi_incl) = range.bounds();
        T::sample_uniform(self, lo, hi_incl)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit
    /// `SmallRng`. Fast, small, not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro: nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&y));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_varied() {
        let mut rng = SmallRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
