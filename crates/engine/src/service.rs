//! Multi-tenant admission-controlled front end over many shared-scan
//! servers: the ROADMAP's "many files, QoS classes, heavy traffic" layer.
//!
//! A [`ScanService`] owns several *named* [`BlockStore`]s, each with its
//! own [`SharedScanServer`] (its own revolution, worker pools, and — when
//! observed — its own trace). Clients route submissions by [`FileId`] or
//! name and declare a [`QosClass`]; the service enforces robustness under
//! overload instead of growing unbounded queues:
//!
//! - **Bounded per-class admission queues.** Each tenant keeps one FIFO
//!   queue per class, capped at [`QosConfig::queue_cap`]; a full queue
//!   sheds the submission synchronously with
//!   [`JobError::Rejected`]`{ reason: QueueFull }`. A service-wide queued
//!   budget ([`QosConfig::max_queued_total`]) sheds with `Overloaded`
//!   before any single queue is inspected, and a submission naming a file
//!   the service does not serve sheds with `UnknownFile`.
//! - **Priority-aware dispatch** — the live port of the simulator's
//!   `PriorityPolicy` ablation (the paper's future-work merge-width
//!   policy). A per-tenant dispatcher admits `High` before `Normal`
//!   before `Low` whenever the merged width (jobs in flight on the
//!   revolution) is below [`QosConfig::max_inflight`], and admits `Low`
//!   **only** while the width is below
//!   [`QosConfig::low_priority_width_cap`] — low-priority work rides free
//!   capacity and is deferred, not starved of correctness, under load.
//! - **Deadlines.** A submission may carry a relative deadline; if it
//!   passes while the job is queued, the dispatcher resolves the handle
//!   to the sticky [`JobError::DeadlineExpired`]; if it passes
//!   mid-revolution, the server's boundary sweep does (purging partial
//!   state like a quarantine). Either way the handle resolves exactly
//!   once and never hangs.
//! - **Graceful shutdown.** [`ScanService::shutdown`] stops the
//!   dispatchers, resolves every still-queued handle with
//!   [`JobError::Aborted`], and then shuts each tenant server down —
//!   in-flight revolutions complete and publish normally.
//!
//! Every submission is accounted for exactly once:
//! `submitted == completed + quarantined + rejected + expired + aborted`
//! ([`ServiceStats`]) — the identity the `s3chaos service` overload
//! fuzzer proves under seeded 2–4× burst arrivals plus injected worker
//! faults.
//!
//! When built with an observed [`ServiceConfig::obs`], the service
//! records `engine.jobs_rejected` / `engine.jobs_expired` /
//! `engine.queue_depth_{high,normal,low}` instruments plus `svc_*` trace
//! instants (`svc_submit`/`svc_admit`/`svc_reject`/`svc_expired`/
//! `svc_abort`/`svc_defer`) whose id encoding lets
//! `check_engine_events` prove the admission-queue invariants: every
//! submit reaches exactly one outcome, every rejection carries a class,
//! and admissions within one (file, class) queue are FIFO.

use crate::scan_server::{
    HandleState, JobHandle, ResolveHook, ResolveKind, ServerConfig, SharedScanServer, SubmitOpts,
};
use crate::store::{BlockStore, FileCatalog, FileId, UnknownFile};
use crate::types::{JobError, MapReduceJob, QosClass, RejectReason};
use parking_lot::{Condvar, Mutex};
use s3_obs::trace::{Ids, NO_ID};
use s3_obs::{Counter, Gauge, Histogram, Obs, TraceRecorder};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control knobs of a [`ScanService`], shared by every tenant.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Capacity of each per-(file, class) admission queue; a submission
    /// to a full queue is shed with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// Maximum merged width per tenant: jobs in flight on one revolution.
    /// The dispatcher stops admitting (any class) at this width.
    pub max_inflight: usize,
    /// The priority policy's merge-width cap: `Low` submissions are
    /// admitted only while the tenant's in-flight width is *below* this.
    /// 0 parks low-priority work until the revolution is idle — which a
    /// cap of 0 never is while anything runs, so 0 effectively reserves
    /// the service for `Normal`/`High` (low jobs drain only at idle).
    pub low_priority_width_cap: usize,
    /// Service-wide bound on queued (not yet admitted) jobs across all
    /// tenants and classes; beyond it submissions are shed with
    /// [`RejectReason::Overloaded`].
    pub max_queued_total: usize,
    /// Deadline applied to submissions that do not carry their own
    /// (`None` = no deadline).
    pub default_deadline: Option<Duration>,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            queue_cap: 64,
            max_inflight: 8,
            low_priority_width_cap: 4,
            max_queued_total: 1024,
            default_deadline: None,
        }
    }
}

/// One named file a [`ScanService`] serves, with the full server
/// configuration its tenant runs under (each tenant may carry its own
/// [`Obs`], fault plan, and threading).
pub struct FileSpec {
    /// Routing name, unique within the service.
    pub name: String,
    /// The data this tenant's revolution scans.
    pub store: BlockStore,
    /// Construction parameters of the tenant's [`SharedScanServer`].
    pub server: ServerConfig,
}

impl FileSpec {
    /// A tenant with default server parameters.
    pub fn new(name: impl Into<String>, store: BlockStore, bps: usize, threads: usize) -> Self {
        FileSpec {
            name: name.into(),
            store,
            server: ServerConfig::new(bps, threads),
        }
    }
}

/// Construction parameters of a [`ScanService`].
pub struct ServiceConfig {
    /// Admission-control knobs.
    pub qos: QosConfig,
    /// Service-level telemetry (admission queues, shed decisions). This
    /// is deliberately a *separate* handle from any tenant's
    /// [`ServerConfig::obs`]: each tenant's engine trace must stay a
    /// single-revolution stream for the partition invariants, so the
    /// service's `svc_*` events live in their own registry.
    pub obs: Obs,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            qos: QosConfig::default(),
            obs: Obs::off(),
        }
    }
}

/// Service-level accounting, read via [`ScanService::stats`]. Monotonic
/// counters; `submitted` is incremented at the top of every `submit`
/// call, so once every outstanding handle has resolved the identity
/// `submitted == completed + quarantined + rejected + expired + aborted`
/// holds exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Every submission the service ever saw (including shed ones).
    pub submitted: u64,
    /// Jobs whose revolution completed and published an output.
    pub completed: u64,
    /// Jobs failed by their own panicking user code.
    pub quarantined: u64,
    /// Submissions shed synchronously at admission.
    pub rejected: u64,
    /// Jobs whose deadline passed while queued or mid-revolution.
    pub expired: u64,
    /// Jobs drained at shutdown (queued or in flight when the runtime
    /// went away).
    pub aborted: u64,
    /// Low-priority jobs deferred at least once by the width cap (not a
    /// terminal state; deferred jobs later admit, expire, or abort).
    pub deferred: u64,
}

impl ServiceStats {
    /// Submissions that have reached a terminal outcome so far.
    pub fn resolved(&self) -> u64 {
        self.completed + self.quarantined + self.rejected + self.expired + self.aborted
    }

    /// The overload accounting identity; true once every handle resolved.
    pub fn identity_holds(&self) -> bool {
        self.submitted == self.resolved()
    }
}

#[derive(Default)]
struct SvcCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    quarantined: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    aborted: AtomicU64,
    deferred: AtomicU64,
}

/// Pre-resolved service instruments plus the trace handle; present only
/// when the service was built observed.
struct SvcObs {
    obs: Obs,
    jobs_submitted: Arc<Counter>,
    jobs_rejected: Arc<Counter>,
    jobs_expired: Arc<Counter>,
    jobs_aborted: Arc<Counter>,
    jobs_deferred: Arc<Counter>,
    /// Queued (not yet admitted) jobs per class, indexed by
    /// [`QosClass::code`] (low, normal, high).
    queue_depth: [Arc<Gauge>; 3],
    /// Enqueue → admission, µs.
    queue_wait: Arc<Histogram>,
}

impl SvcObs {
    fn new(obs: &Obs) -> Option<Arc<SvcObs>> {
        let m = &obs.core()?.metrics;
        Some(Arc::new(SvcObs {
            obs: obs.clone(),
            jobs_submitted: m.counter("engine.jobs_submitted"),
            jobs_rejected: m.counter("engine.jobs_rejected"),
            jobs_expired: m.counter("engine.jobs_expired"),
            jobs_aborted: m.counter("engine.jobs_aborted"),
            jobs_deferred: m.counter("engine.jobs_deferred"),
            queue_depth: [
                m.gauge("engine.queue_depth_low"),
                m.gauge("engine.queue_depth_normal"),
                m.gauge("engine.queue_depth_high"),
            ],
            queue_wait: m.histogram("engine.queue_wait_us"),
        }))
    }

    fn tracer(&self) -> &TraceRecorder {
        &self.obs.core().expect("SvcObs only exists when on").tracer
    }
}

/// `ids.n` of `svc_admit`/`svc_expired`/`svc_abort`/`svc_defer`: the file
/// index in the high 32 bits, the job's per-(file, class) enqueue
/// sequence number in the low 32 — what lets the trace invariants prove
/// per-queue FIFO without trusting microsecond timestamps.
fn pack_file_seq(file: FileId, seq: u64) -> u64 {
    ((file.index() as u64) << 32) | (seq & 0xffff_ffff)
}

/// One job sitting in an admission queue.
struct Queued<J: MapReduceJob> {
    id: u64,
    /// Enqueue sequence within this (file, class) queue.
    seq: u64,
    file: FileId,
    class: QosClass,
    job: J,
    state: Arc<HandleState<J::K, J::Out>>,
    enqueued: Instant,
    expires_at: Option<Instant>,
    /// Whether this job has already been counted as width-cap deferred.
    deferred: bool,
}

/// One tenant's admission state: three class queues under one lock, the
/// in-flight width, and per-class enqueue sequence counters.
struct Admission<J: MapReduceJob> {
    q: Mutex<[VecDeque<Queued<J>>; 3]>,
    cv: Condvar,
    /// Jobs admitted to the tenant server and not yet resolved — the
    /// merged width of its revolution as the priority policy sees it.
    inflight: AtomicUsize,
    next_seq: [AtomicU64; 3],
}

impl<J: MapReduceJob> Admission<J> {
    fn new() -> Arc<Self> {
        Arc::new(Admission {
            q: Mutex::new([VecDeque::new(), VecDeque::new(), VecDeque::new()]),
            cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            next_seq: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        })
    }
}

struct Tenant<J: MapReduceJob + 'static> {
    server: Arc<SharedScanServer<J>>,
    /// The tenant server's own telemetry handle (possibly off).
    obs: Obs,
    adm: Arc<Admission<J>>,
}

/// The multi-tenant scan service. See the module docs for the admission
/// model; construction is [`ScanService::new`], submission is
/// [`ScanService::submit`] / [`ScanService::submit_named`] /
/// [`ScanService::submit_with_deadline`], teardown is
/// [`ScanService::shutdown`] (or `Drop`, which is equivalent).
pub struct ScanService<J: MapReduceJob + 'static> {
    catalog: FileCatalog,
    tenants: Vec<Tenant<J>>,
    dispatchers: Vec<JoinHandle<()>>,
    qos: QosConfig,
    counters: Arc<SvcCounters>,
    obs: Option<Arc<SvcObs>>,
    next_id: AtomicU64,
    total_queued: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
}

impl<J: MapReduceJob + 'static> ScanService<J> {
    /// Start a service over `files` with admission parameters `cfg`.
    ///
    /// # Panics
    /// Panics on an empty file set, a duplicate name, or degenerate QoS
    /// bounds (`queue_cap`, `max_inflight`, or `max_queued_total` of 0).
    pub fn new(files: Vec<FileSpec>, cfg: ServiceConfig) -> Self {
        assert!(!files.is_empty(), "a service needs at least one file");
        assert!(cfg.qos.queue_cap > 0, "queue_cap must be positive");
        assert!(cfg.qos.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.qos.max_queued_total > 0, "max_queued_total must be positive");

        let counters = Arc::new(SvcCounters::default());
        let obs = SvcObs::new(&cfg.obs);
        let total_queued = Arc::new(AtomicUsize::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut catalog = FileCatalog::new();
        let mut tenants = Vec::with_capacity(files.len());
        let mut dispatchers = Vec::with_capacity(files.len());
        for spec in files {
            let id = catalog
                .register(spec.name.clone(), spec.store.clone())
                .unwrap_or_else(|_| panic!("duplicate file name {:?}", spec.name));
            let tenant_obs = spec.server.obs.clone();
            let server = Arc::new(SharedScanServer::with_config(spec.store, spec.server));
            let adm = Admission::<J>::new();
            let hook: ResolveHook = {
                let adm = Arc::clone(&adm);
                let counters = Arc::clone(&counters);
                Arc::new(move |kind| {
                    adm.inflight.fetch_sub(1, Ordering::AcqRel);
                    let c = match kind {
                        ResolveKind::Completed => &counters.completed,
                        ResolveKind::Quarantined => &counters.quarantined,
                        ResolveKind::Aborted => &counters.aborted,
                        ResolveKind::Expired => &counters.expired,
                    };
                    c.fetch_add(1, Ordering::Relaxed);
                    // Serialize the wakeup against the dispatcher's
                    // width-check → wait window (see dispatcher_loop).
                    let _q = adm.q.lock();
                    adm.cv.notify_all();
                })
            };
            let dispatcher = {
                let adm = Arc::clone(&adm);
                let server = Arc::clone(&server);
                let hook = hook.clone();
                let counters = Arc::clone(&counters);
                let obs = obs.clone();
                let total_queued = Arc::clone(&total_queued);
                let shutdown = Arc::clone(&shutdown);
                let qos = cfg.qos.clone();
                std::thread::Builder::new()
                    .name(format!("s3-svc-dispatch-{}", spec.name))
                    .spawn(move || {
                        dispatcher_loop(adm, server, hook, counters, obs, total_queued, shutdown, qos)
                    })
                    .expect("spawning a service dispatcher thread")
            };
            tenants.push(Tenant {
                server,
                obs: tenant_obs,
                adm,
            });
            dispatchers.push(dispatcher);
            debug_assert_eq!(id.index(), tenants.len() - 1);
        }

        ScanService {
            catalog,
            tenants,
            dispatchers,
            qos: cfg.qos,
            counters,
            obs,
            next_id: AtomicU64::new(0),
            total_queued,
            shutdown,
        }
    }

    /// Resolve a file name to its routing id.
    pub fn file_id(&self, name: &str) -> Result<FileId, UnknownFile> {
        self.catalog.resolve(name)
    }

    /// The name behind a file id, if this service serves it.
    pub fn file_name(&self, id: FileId) -> Option<&str> {
        self.catalog.name(id)
    }

    /// The files this service serves, in id order.
    pub fn files(&self) -> impl Iterator<Item = (FileId, &str)> {
        self.catalog.iter().map(|(id, name, _)| (id, name))
    }

    /// A tenant's engine telemetry handle (the [`ServerConfig::obs`] its
    /// [`FileSpec`] carried) — for draining per-tenant traces.
    pub fn tenant_obs(&self, id: FileId) -> Option<&Obs> {
        self.tenants.get(id.index()).map(|t| &t.obs)
    }

    /// Service-level accounting so far.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            aborted: c.aborted.load(Ordering::Relaxed),
            deferred: c.deferred.load(Ordering::Relaxed),
        }
    }

    /// Jobs currently queued (not yet admitted) across all tenants.
    pub fn queued(&self) -> usize {
        self.total_queued.load(Ordering::Relaxed)
    }

    /// Jobs currently in flight on a tenant's revolution.
    pub fn inflight(&self, id: FileId) -> usize {
        self.tenants
            .get(id.index())
            .map_or(0, |t| t.adm.inflight.load(Ordering::Acquire))
    }

    /// Submit under the service's default deadline (usually none).
    pub fn submit(
        &self,
        file: FileId,
        class: QosClass,
        job: J,
    ) -> Result<JobHandle<J::K, J::Out>, JobError> {
        self.submit_with_deadline(file, class, job, self.qos.default_deadline)
    }

    /// Submit by name; an unregistered name sheds with
    /// [`RejectReason::UnknownFile`].
    pub fn submit_named(
        &self,
        name: &str,
        class: QosClass,
        job: J,
    ) -> Result<JobHandle<J::K, J::Out>, JobError> {
        match self.catalog.resolve(name) {
            Ok(id) => self.submit(id, class, job),
            Err(_) => {
                let id = self.begin_submit(NO_ID, class);
                Err(self.reject(id, class, RejectReason::UnknownFile))
            }
        }
    }

    /// Submit with an explicit relative deadline (`None` = no deadline,
    /// overriding any [`QosConfig::default_deadline`]). The deadline
    /// covers queueing *and* the revolution: whenever it passes, the
    /// handle resolves to [`JobError::DeadlineExpired`].
    pub fn submit_with_deadline(
        &self,
        file: FileId,
        class: QosClass,
        job: J,
        deadline: Option<Duration>,
    ) -> Result<JobHandle<J::K, J::Out>, JobError> {
        let known = self.catalog.store(file).is_some();
        let id = self.begin_submit(if known { file.index() as u64 } else { NO_ID }, class);
        if !known {
            return Err(self.reject(id, class, RejectReason::UnknownFile));
        }
        if self.shutdown.load(Ordering::SeqCst) {
            // Unreachable through the public API (shutdown consumes the
            // service) but kept so no internal race can enqueue into a
            // drained queue.
            return Err(self.reject(id, class, RejectReason::Overloaded));
        }
        let t = &self.tenants[file.index()];
        let ci = class.code() as usize;
        let mut q = t.adm.q.lock();
        if self.total_queued.load(Ordering::Relaxed) >= self.qos.max_queued_total {
            drop(q);
            return Err(self.reject(id, class, RejectReason::Overloaded));
        }
        if q[ci].len() >= self.qos.queue_cap {
            drop(q);
            return Err(self.reject(id, class, RejectReason::QueueFull));
        }
        let seq = t.adm.next_seq[ci].fetch_add(1, Ordering::Relaxed);
        let state = HandleState::new();
        let now = Instant::now();
        q[ci].push_back(Queued {
            id,
            seq,
            file,
            class,
            job,
            state: Arc::clone(&state),
            enqueued: now,
            expires_at: deadline.map(|d| now + d),
            deferred: false,
        });
        self.total_queued.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.queue_depth[ci].set(q[ci].len() as i64);
        }
        drop(q);
        t.adm.cv.notify_all();
        Ok(JobHandle::from_state(state))
    }

    /// Count the submission and emit its `svc_submit` instant. Returns
    /// the service job id.
    fn begin_submit(&self, file_n: u64, class: QosClass) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.jobs_submitted.inc();
            o.tracer().instant(
                "svc_submit",
                Ids {
                    job: id,
                    seg: class.code(),
                    n: file_n,
                        ..Ids::none()
                },
            );
        }
        id
    }

    fn reject(&self, id: u64, class: QosClass, reason: RejectReason) -> JobError {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.jobs_rejected.inc();
            o.tracer().instant(
                "svc_reject",
                Ids {
                    job: id,
                    seg: class.code(),
                    n: reason.code(),
                        ..Ids::none()
                },
            );
        }
        JobError::Rejected { reason, class }
    }

    /// Stop the service: dispatchers exit after resolving every queued
    /// handle with [`JobError::Aborted`]; tenant servers then shut down,
    /// letting in-flight revolutions complete and publish. Every handle
    /// the service ever returned is resolved when this returns.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Flag + notify under each queue lock so a dispatcher between its
        // shutdown check and its wait cannot miss the signal.
        self.shutdown.store(true, Ordering::SeqCst);
        for t in &self.tenants {
            let _q = t.adm.q.lock();
            t.adm.cv.notify_all();
        }
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
        // Dispatchers are gone; this is the last Arc to each server, so
        // dropping it runs the server's full shutdown (drain + join).
        for t in self.tenants.drain(..) {
            match Arc::try_unwrap(t.server) {
                Ok(server) => server.shutdown(),
                Err(arc) => drop(arc),
            }
        }
    }
}

impl<J: MapReduceJob + 'static> Drop for ScanService<J> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

const LOW: usize = 0;
const NORMAL: usize = 1;
const HIGH: usize = 2;

/// One tenant's admission pump: sweep queued deadlines, drain on
/// shutdown, admit by priority under the width caps, park until the
/// picture changes (new submission, a resolution freeing width, shutdown,
/// or the earliest queued deadline).
#[allow(clippy::too_many_arguments)]
fn dispatcher_loop<J: MapReduceJob + 'static>(
    adm: Arc<Admission<J>>,
    server: Arc<SharedScanServer<J>>,
    hook: ResolveHook,
    counters: Arc<SvcCounters>,
    obs: Option<Arc<SvcObs>>,
    total_queued: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    qos: QosConfig,
) {
    let mut q = adm.q.lock();
    loop {
        // Deadline sweep over every queue: an expired queued job resolves
        // here and never touches the server.
        let now = Instant::now();
        for ci in [HIGH, NORMAL, LOW] {
            let mut k = 0;
            while k < q[ci].len() {
                if q[ci][k].expires_at.is_some_and(|t| t <= now) {
                    let j = q[ci].remove(k).expect("index in bounds");
                    total_queued.fetch_sub(1, Ordering::Relaxed);
                    counters.expired.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.jobs_expired.inc();
                        o.queue_depth[ci].set(q[ci].len() as i64);
                        o.tracer().instant(
                            "svc_expired",
                            Ids {
                                job: j.id,
                                seg: j.class.code(),
                                n: pack_file_seq(j.file, j.seq),
                                    ..Ids::none()
                            },
                        );
                    }
                    j.state.resolve(Err(JobError::DeadlineExpired));
                } else {
                    k += 1;
                }
            }
        }

        if shutdown.load(Ordering::SeqCst) {
            // Drain: every queued handle resolves to Aborted, in queue
            // order, before the dispatcher exits.
            for ci in [HIGH, NORMAL, LOW] {
                while let Some(j) = q[ci].pop_front() {
                    total_queued.fetch_sub(1, Ordering::Relaxed);
                    counters.aborted.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.jobs_aborted.inc();
                        o.tracer().instant(
                            "svc_abort",
                            Ids {
                                job: j.id,
                                seg: j.class.code(),
                                n: pack_file_seq(j.file, j.seq),
                                    ..Ids::none()
                            },
                        );
                    }
                    j.state.resolve(Err(JobError::Aborted));
                }
                if let Some(o) = &obs {
                    o.queue_depth[ci].set(0);
                }
            }
            return;
        }

        // Admit one job if width remains: High, then Normal, then Low —
        // Low only below the priority policy's width cap. One at a time
        // because the server call must happen *outside* the queue lock
        // (submitting to a dead server publishes an abort synchronously,
        // and the resolve hook takes this lock).
        let width = adm.inflight.load(Ordering::Acquire);
        let picked = if width >= qos.max_inflight {
            None
        } else if !q[HIGH].is_empty() {
            Some(HIGH)
        } else if !q[NORMAL].is_empty() {
            Some(NORMAL)
        } else if !q[LOW].is_empty() {
            if width < qos.low_priority_width_cap {
                Some(LOW)
            } else {
                // Width capacity exists but the low cap holds the job
                // back: that is a deferral, counted once per job.
                let head = &mut q[LOW][0];
                if !head.deferred {
                    head.deferred = true;
                    counters.deferred.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.jobs_deferred.inc();
                        o.tracer().instant(
                            "svc_defer",
                            Ids {
                                job: head.id,
                                seg: head.class.code(),
                                n: pack_file_seq(head.file, head.seq),
                                    ..Ids::none()
                            },
                        );
                    }
                }
                None
            }
        } else {
            None
        };
        if let Some(ci) = picked {
            let j = q[ci].pop_front().expect("picked a non-empty queue");
            total_queued.fetch_sub(1, Ordering::Relaxed);
            adm.inflight.fetch_add(1, Ordering::AcqRel);
            if let Some(o) = &obs {
                o.queue_depth[ci].set(q[ci].len() as i64);
                o.queue_wait.record(j.enqueued.elapsed().as_micros() as u64);
                o.tracer().instant(
                    "svc_admit",
                    Ids {
                        job: j.id,
                        seg: j.class.code(),
                        n: pack_file_seq(j.file, j.seq),
                            ..Ids::none()
                    },
                );
            }
            drop(q);
            server.submit_routed(
                j.job,
                SubmitOpts {
                    state: j.state,
                    expires_at: j.expires_at,
                    on_resolve: Some(hook.clone()),
                },
            );
            q = adm.q.lock();
            continue;
        }

        // Park until something changes; cap the wait at the earliest
        // queued deadline so expiry is published promptly.
        let next_expiry = q
            .iter()
            .flat_map(|dq| dq.iter())
            .filter_map(|j| j.expires_at)
            .min();
        match next_expiry {
            Some(t) => {
                let now = Instant::now();
                if t > now {
                    adm.cv.wait_for(&mut q, t - now);
                }
                // An already-passed deadline loops straight into the sweep.
            }
            None => adm.cv.wait(&mut q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_job, ExecConfig};

    /// A prefix counter whose map can be gated: while `gate` is false the
    /// first mapped line spins, pinning the job (and the width slot it
    /// occupies) in flight — what the admission tests need to observe
    /// queues deterministically.
    struct GatedCount {
        prefix: String,
        gate: Option<Arc<AtomicBool>>,
    }

    impl GatedCount {
        fn free(prefix: &str) -> Self {
            GatedCount { prefix: prefix.into(), gate: None }
        }
    }

    impl MapReduceJob for GatedCount {
        type K = String;
        type V = i64;
        type Out = i64;

        fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
            if let Some(g) = &self.gate {
                while !g.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            for w in line.split_whitespace() {
                if w.starts_with(&self.prefix) {
                    emit(w.to_string(), 1);
                }
            }
        }

        fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
            Some(v.iter().sum())
        }
    }

    fn corpus(tag: &str, repeats: usize) -> BlockStore {
        let text = format!("{tag} alpha beta\ngamma {tag} delta\n").repeat(repeats);
        BlockStore::from_text(&text, 64)
    }

    fn two_file_service(qos: QosConfig) -> ScanService<GatedCount> {
        ScanService::new(
            vec![
                FileSpec::new("logs", corpus("log", 40), 2, 2),
                FileSpec::new("events", corpus("evt", 20), 2, 2),
            ],
            ServiceConfig { qos, obs: Obs::off() },
        )
    }

    #[test]
    fn routes_by_file_and_matches_solo_outputs() {
        let svc = two_file_service(QosConfig::default());
        let logs = svc.file_id("logs").unwrap();
        let events = svc.file_id("events").unwrap();
        let h1 = svc.submit(logs, QosClass::Normal, GatedCount::free("log")).unwrap();
        let h2 = svc.submit(events, QosClass::High, GatedCount::free("evt")).unwrap();
        let out1 = h1.wait().expect("logs job completed");
        let out2 = h2.wait().expect("events job completed");
        let solo1 = run_job(&GatedCount::free("log"), &corpus("log", 40), &ExecConfig::default());
        let solo2 = run_job(&GatedCount::free("evt"), &corpus("evt", 20), &ExecConfig::default());
        assert_eq!(out1.records, solo1.records);
        assert_eq!(out2.records, solo2.records);
        assert_eq!(out1.records["log"], 80);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert!(stats.identity_holds());
        svc.shutdown();
    }

    #[test]
    fn unknown_file_is_shed_with_a_typed_rejection() {
        let svc = two_file_service(QosConfig::default());
        let err = svc
            .submit_named("missing", QosClass::Normal, GatedCount::free(""))
            .unwrap_err();
        assert_eq!(
            err,
            JobError::Rejected { reason: RejectReason::UnknownFile, class: QosClass::Normal }
        );
        // A FileId from a foreign catalog sheds the same way.
        let foreign = FileId(99);
        let err = svc.submit(foreign, QosClass::High, GatedCount::free("")).unwrap_err();
        assert_eq!(
            err,
            JobError::Rejected { reason: RejectReason::UnknownFile, class: QosClass::High }
        );
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 2);
        assert!(stats.identity_holds());
        svc.shutdown();
    }

    #[test]
    fn queue_full_and_overload_shed_synchronously() {
        let qos = QosConfig {
            queue_cap: 2,
            max_inflight: 1,
            low_priority_width_cap: 1,
            max_queued_total: 3,
            default_deadline: None,
        };
        let svc = two_file_service(qos);
        let logs = svc.file_id("logs").unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        // Occupies the single width slot for as long as the gate holds.
        let pinned = svc
            .submit(logs, QosClass::High, GatedCount { prefix: String::new(), gate: Some(Arc::clone(&gate)) })
            .unwrap();
        // Wait until it is actually admitted (queue empty, width 1).
        while svc.inflight(logs) == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        // Fill the Normal queue to its cap...
        let queued: Vec<_> = (0..2)
            .map(|_| svc.submit(logs, QosClass::Normal, GatedCount::free("log")).unwrap())
            .collect();
        // ...the next Normal submission sheds QueueFull...
        let err = svc.submit(logs, QosClass::Normal, GatedCount::free("log")).unwrap_err();
        assert_eq!(
            err,
            JobError::Rejected { reason: RejectReason::QueueFull, class: QosClass::Normal }
        );
        // ...and once the service-wide budget (3) is reached, even an
        // empty class queue sheds Overloaded.
        let h_low = svc.submit(logs, QosClass::Low, GatedCount::free("log")).unwrap();
        let err = svc.submit(logs, QosClass::Low, GatedCount::free("log")).unwrap_err();
        assert_eq!(
            err,
            JobError::Rejected { reason: RejectReason::Overloaded, class: QosClass::Low }
        );
        gate.store(true, Ordering::SeqCst);
        pinned.wait().expect("pinned job completed");
        for h in queued {
            h.wait().expect("queued job completed after the gate opened");
        }
        h_low.wait().expect("low job admitted once width freed");
        let stats = svc.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 2);
        assert!(stats.identity_holds());
        svc.shutdown();
    }

    #[test]
    fn deadline_in_queue_expires_exactly_once() {
        let qos = QosConfig { max_inflight: 1, ..QosConfig::default() };
        let svc = two_file_service(qos);
        let logs = svc.file_id("logs").unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        let pinned = svc
            .submit(logs, QosClass::High, GatedCount { prefix: String::new(), gate: Some(Arc::clone(&gate)) })
            .unwrap();
        while svc.inflight(logs) == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let doomed = svc
            .submit_with_deadline(
                logs,
                QosClass::Normal,
                GatedCount::free("log"),
                Some(Duration::from_millis(5)),
            )
            .unwrap();
        let res = doomed
            .wait_timeout(Duration::from_secs(10))
            .expect("queued expiry resolves well within the bound");
        assert_eq!(res, Err(JobError::DeadlineExpired));
        // Exactly once: the slot is now empty forever.
        assert!(doomed.try_take().is_none());
        assert_eq!(doomed.wait_timeout(Duration::from_millis(1)), Err(crate::WaitTimeout));
        gate.store(true, Ordering::SeqCst);
        pinned.wait().expect("pinned job completed");
        let stats = svc.stats();
        assert_eq!(stats.expired, 1);
        assert!(stats.identity_holds());
        svc.shutdown();
    }

    #[test]
    fn low_priority_defers_at_the_width_cap_while_high_rides() {
        let qos = QosConfig {
            queue_cap: 8,
            max_inflight: 2,
            low_priority_width_cap: 1,
            max_queued_total: 64,
            default_deadline: None,
        };
        let svc = two_file_service(qos);
        let logs = svc.file_id("logs").unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        let pinned = svc
            .submit(logs, QosClass::Normal, GatedCount { prefix: String::new(), gate: Some(Arc::clone(&gate)) })
            .unwrap();
        while svc.inflight(logs) == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        // Width is 1 == low cap: a Low submission must sit queued...
        let low = svc.submit(logs, QosClass::Low, GatedCount::free("log")).unwrap();
        assert_eq!(low.wait_timeout(Duration::from_millis(40)), Err(crate::WaitTimeout));
        // ...while a High submission is admitted past it into the free
        // width slot (admission bumps inflight immediately; the job itself
        // can't *finish* until the gated revolution drains, so completion
        // is checked after the gate opens).
        let high = svc.submit(logs, QosClass::High, GatedCount::free("log")).unwrap();
        while svc.inflight(logs) < 2 {
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(svc.stats().deferred >= 1, "the low job was width-cap deferred");
        assert_eq!(svc.queued(), 1, "the low job is still waiting in its queue");
        gate.store(true, Ordering::SeqCst);
        pinned.wait().expect("pinned completed");
        high.wait_timeout(Duration::from_secs(10))
            .expect("high admitted past the deferred low job")
            .expect("high completed");
        low.wait_timeout(Duration::from_secs(10))
            .expect("low admitted once the width dropped below the cap")
            .expect("low completed");
        let stats = svc.stats();
        assert_eq!(stats.completed, 3);
        assert!(stats.identity_holds());
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_every_queued_handle_with_aborted() {
        let qos = QosConfig { max_inflight: 1, ..QosConfig::default() };
        let svc = two_file_service(qos);
        let logs = svc.file_id("logs").unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        let pinned = svc
            .submit(logs, QosClass::High, GatedCount { prefix: String::new(), gate: Some(Arc::clone(&gate)) })
            .unwrap();
        while svc.inflight(logs) == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        let queued: Vec<_> = (0..4)
            .map(|i| {
                let class = if i % 2 == 0 { QosClass::Normal } else { QosClass::Low };
                svc.submit(logs, class, GatedCount::free("log")).unwrap()
            })
            .collect();
        let stats_before = svc.stats();
        assert_eq!(stats_before.submitted, 5);
        // Open the gate shortly after shutdown starts so the pinned job
        // (and the server teardown waiting on it) can finish.
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                gate.store(true, Ordering::SeqCst);
            })
        };
        svc.shutdown();
        opener.join().unwrap();
        for h in queued {
            assert_eq!(h.wait(), Err(JobError::Aborted), "queued handles drain as Aborted");
        }
        pinned.wait().expect("the in-flight job completed normally");
    }
}
