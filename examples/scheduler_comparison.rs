//! Full scheduler shoot-out on the paper's sparse workload: S³ vs FIFO vs
//! the three MRShare batching variants, on the simulated 40-node cluster.
//!
//! This is Figure 4(a) as a library-API walkthrough (the `repro` binary
//! prints the canonical version).
//!
//! ```text
//! cargo run --release -p s3-bench --example scheduler_comparison
//! ```

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, RunMetrics, Scheduler,
};
use s3_workloads::{paper_wordcount_file, wordcount_normal, ArrivalPattern};

fn run(scheduler: &mut dyn Scheduler) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();
    let arrivals = ArrivalPattern::paper_sparse().times();
    let workload = requests_from_arrivals(&profile, dataset.file, &arrivals);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig::default(),
    )
    .expect("simulation completes")
}

fn main() {
    let arrivals = ArrivalPattern::paper_sparse().times();
    println!(
        "10 wordcount jobs over one 160 GB file, sparse pattern (3 groups):"
    );
    println!(
        "arrivals: {:?}\n",
        arrivals.iter().map(|t| *t as u64).collect::<Vec<_>>()
    );

    let results = vec![
        run(&mut S3Scheduler::default()),
        run(&mut FifoScheduler::new()),
        run(&mut MRShareScheduler::mrs1(10)),
        run(&mut MRShareScheduler::mrs2(10)),
        run(&mut MRShareScheduler::mrs3(10)),
    ];

    let base_tet = results[0].tet().as_secs_f64();
    let base_art = results[0].art().as_secs_f64();
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "scheme", "TET(s)", "ART(s)", "TET/S3", "ART/S3", "scans", "locality"
    );
    for m in &results {
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>8.2} {:>8.2} {:>9} {:>9.1}%",
            m.scheduler,
            m.tet().as_secs_f64(),
            m.art().as_secs_f64(),
            m.tet().as_secs_f64() / base_tet,
            m.art().as_secs_f64() / base_art,
            m.blocks_read,
            100.0 * m.locality_rate()
        );
    }

    println!("\nper-job response times (s):");
    for m in &results {
        let responses: Vec<u64> = m
            .outcomes
            .iter()
            .map(|o| o.response().as_secs_f64() as u64)
            .collect();
        println!("{:<8} {:?}", m.scheduler, responses);
    }
}
