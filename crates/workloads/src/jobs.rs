//! Real (executable) jobs for the `s3-engine` execution engine.
//!
//! Two families, matching Section V-B:
//!
//! - [`PatternWordCount`] — the paper's modified wordcount that "counts
//!   only the words that match a user-specified pattern"; different
//!   patterns make different jobs over the same input.
//! - [`SelectionJob`] — the SQL selection over `lineitem`
//!   (`SELECT l_orderkey, ... WHERE l_quantity > VAL`); different
//!   thresholds make different jobs.

use crate::lineitem::parse_row_bytes;
use s3_engine::MapReduceJob;

/// Which words a [`PatternWordCount`] counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordPattern {
    /// Count every word.
    All,
    /// Count words starting with the given prefix.
    Prefix(String),
    /// Count words containing the given substring.
    Contains(String),
    /// Count words of exactly the given length.
    Length(usize),
}

impl WordPattern {
    /// Does `word` match?
    pub fn matches(&self, word: &str) -> bool {
        self.matches_bytes(word.as_bytes())
    }

    /// Byte-level [`WordPattern::matches`] for the zero-copy scan path.
    /// Prefix/contains are byte comparisons and length counts bytes, so the
    /// two views agree on any UTF-8 word.
    pub fn matches_bytes(&self, word: &[u8]) -> bool {
        match self {
            WordPattern::All => true,
            WordPattern::Prefix(p) => word.starts_with(p.as_bytes()),
            WordPattern::Contains(s) => memchr::find(word, s.as_bytes()).is_some(),
            WordPattern::Length(n) => word.len() == *n,
        }
    }
}

/// Pattern-filtered wordcount.
#[derive(Debug, Clone)]
pub struct PatternWordCount {
    /// The filter; jobs differ by pattern.
    pub pattern: WordPattern,
}

impl PatternWordCount {
    /// Count all words.
    pub fn all() -> Self {
        PatternWordCount {
            pattern: WordPattern::All,
        }
    }

    /// Count words with the given prefix.
    pub fn prefix(p: impl Into<String>) -> Self {
        PatternWordCount {
            pattern: WordPattern::Prefix(p.into()),
        }
    }
}

impl MapReduceJob for PatternWordCount {
    type K = String;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for word in line.split_whitespace() {
            if self.pattern.matches(word) {
                emit(word.to_string(), 1);
            }
        }
    }

    fn combine(&self, _key: &String, values: Vec<i64>) -> Vec<i64> {
        vec![values.iter().sum()]
    }

    fn reduce(&self, _key: &String, values: &[i64]) -> Option<i64> {
        Some(values.iter().sum())
    }

    fn combine_is_fold(&self) -> bool {
        true
    }

    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }

    fn map_is_per_token(&self) -> bool {
        true
    }

    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if self.pattern.matches(token) {
            emit(token.to_string(), 1);
        }
    }

    fn map_token_bytes(&self, token: &[u8], emit: &mut dyn FnMut(String, i64)) {
        if self.pattern.matches_bytes(token) {
            emit(String::from_utf8_lossy(token).into_owned(), 1);
        }
    }

    // Token-identity fast path: the engine folds counts under raw token
    // bytes and builds each distinct word's String exactly once.
    fn map_emits_token(&self) -> bool {
        true
    }

    fn token_value(&self, token: &[u8]) -> Option<i64> {
        self.pattern.matches_bytes(token).then_some(1)
    }

    fn token_key(&self, token: &[u8]) -> String {
        String::from_utf8_lossy(token).into_owned()
    }
}

/// The SQL selection of Section V-G:
/// `SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem
///  WHERE l_quantity > threshold`.
///
/// Key = orderkey (zero-padded so ordering is numeric), value = the
/// projected columns. Reduce is the identity (selection has no
/// aggregation); it still runs through the reduce phase as in the paper's
/// MapReduce translation (30 reduce tasks).
#[derive(Debug, Clone)]
pub struct SelectionJob {
    /// `VAL` in the paper's query; `> 45` gives ~10% selectivity.
    pub quantity_threshold: u32,
}

impl SelectionJob {
    /// The paper's tuning: ~10% of tuples selected.
    pub fn paper_selectivity() -> Self {
        SelectionJob {
            quantity_threshold: 45,
        }
    }
}

impl MapReduceJob for SelectionJob {
    type K = String;
    type V = String;
    type Out = String;

    fn map(&self, line: &str, emit: &mut dyn FnMut(String, String)) {
        self.map_bytes(line.as_bytes(), emit);
    }

    fn map_bytes(&self, line: &[u8], emit: &mut dyn FnMut(String, String)) {
        if let Some(row) = parse_row_bytes(line) {
            if row.quantity > self.quantity_threshold {
                let key = format!("{:012}", row.orderkey);
                let value = format!(
                    "{}|{}.{:02}|0.{:02}",
                    row.orderkey,
                    row.extendedprice_cents / 100,
                    row.extendedprice_cents % 100,
                    row.discount_pct
                );
                emit(key, value);
            }
        }
    }

    fn reduce(&self, _key: &String, values: &[String]) -> Option<String> {
        // Selection: pass the (single) projected tuple through.
        values.first().cloned()
    }
}

/// Distributed grep (the original MapReduce paper's canonical example):
/// emit every line containing the pattern, keyed by the line itself, with
/// its occurrence count.
#[derive(Debug, Clone)]
pub struct GrepJob {
    /// Substring to search for.
    pub pattern: String,
}

impl MapReduceJob for GrepJob {
    type K = String;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        if line.contains(self.pattern.as_str()) {
            emit(line.to_string(), 1);
        }
    }

    fn map_bytes(&self, line: &[u8], emit: &mut dyn FnMut(String, i64)) {
        if memchr::find(line, self.pattern.as_bytes()).is_some() {
            emit(String::from_utf8_lossy(line).into_owned(), 1);
        }
    }

    fn combine(&self, _key: &String, values: Vec<i64>) -> Vec<i64> {
        vec![values.iter().sum()]
    }

    fn reduce(&self, _key: &String, values: &[i64]) -> Option<i64> {
        Some(values.iter().sum())
    }

    // Grep is line-based (no per-token map), but its count combiner is a
    // streaming fold.
    fn combine_is_fold(&self) -> bool {
        true
    }

    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
}

/// Word-length histogram: a tiny-key-space aggregation where the combiner
/// does nearly all the work (the opposite regime from wordcount's wide key
/// space).
#[derive(Debug, Clone, Default)]
pub struct WordLengthHistogram;

impl MapReduceJob for WordLengthHistogram {
    type K = usize;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(usize, i64)) {
        for w in line.split_whitespace() {
            emit(w.len(), 1);
        }
    }

    fn combine(&self, _key: &usize, values: Vec<i64>) -> Vec<i64> {
        vec![values.iter().sum()]
    }

    fn reduce(&self, _key: &usize, values: &[i64]) -> Option<i64> {
        Some(values.iter().sum())
    }

    fn combine_is_fold(&self) -> bool {
        true
    }

    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }

    fn map_is_per_token(&self) -> bool {
        true
    }

    fn map_token(&self, token: &str, emit: &mut dyn FnMut(usize, i64)) {
        emit(token.len(), 1);
    }

    // No token-identity fast path: the key space (lengths) is far smaller
    // than the token space, so interning every distinct word would cost
    // more than the per-token emit it saves.
    fn map_token_bytes(&self, token: &[u8], emit: &mut dyn FnMut(usize, i64)) {
        emit(token.len(), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem::LineItemGen;
    use crate::text::TextGen;
    use s3_engine::{run_job, run_merged, BlockStore, ExecConfig};
    use s3_sim::SimRng;

    fn text_store() -> BlockStore {
        let g = TextGen::new(2000, 1.1);
        let text = g.generate(&mut SimRng::seed_from_u64(11), 100_000);
        BlockStore::from_text(&text, 8_192)
    }

    fn lineitem_store() -> BlockStore {
        let text = LineItemGen::new().generate(&mut SimRng::seed_from_u64(12), 200_000);
        BlockStore::from_text(&text, 16_384)
    }

    #[test]
    fn pattern_variants_filter() {
        assert!(WordPattern::All.matches("anything"));
        assert!(WordPattern::Prefix("ab".into()).matches("abc"));
        assert!(!WordPattern::Prefix("ab".into()).matches("ba"));
        assert!(WordPattern::Contains("el".into()).matches("hello"));
        assert!(WordPattern::Length(3).matches("abc"));
        assert!(!WordPattern::Length(3).matches("ab"));
    }

    #[test]
    fn wordcount_all_counts_every_token() {
        let store = text_store();
        let out = run_job(&PatternWordCount::all(), &store, &ExecConfig::default());
        let total: i64 = out.records.values().sum();
        let expected = store
            .iter()
            .map(|b| memchr::tokens(b).count())
            .sum::<usize>() as i64;
        assert_eq!(total, expected);
    }

    #[test]
    fn different_patterns_are_different_jobs_on_one_scan() {
        let store = text_store();
        let jobs = [
            PatternWordCount::prefix("ba"),
            PatternWordCount::prefix("ta"),
            PatternWordCount::all(),
        ];
        let refs: Vec<&PatternWordCount> = jobs.iter().collect();
        let merged = run_merged(&refs, &store, &ExecConfig::default());
        for (j, m) in jobs.iter().zip(&merged) {
            let solo = run_job(j, &store, &ExecConfig::default());
            assert_eq!(m.records, solo.records);
        }
        // The "all" job strictly contains the filtered jobs' keys.
        for key in merged[0].records.keys() {
            assert!(merged[2].records.contains_key(key));
        }
    }

    #[test]
    fn selection_matches_predicate_exactly() {
        let store = lineitem_store();
        let job = SelectionJob::paper_selectivity();
        let out = run_job(&job, &store, &ExecConfig::default());
        let expected = store
            .iter()
            .flat_map(memchr::lines)
            .filter(|l| crate::lineitem::parse_row_bytes(l).is_some_and(|r| r.quantity > 45))
            .count();
        assert_eq!(out.records.len(), expected);
        // ~10% selectivity on this data.
        let total: usize = store.iter().flat_map(memchr::lines).count();
        let rate = expected as f64 / total as f64;
        assert!((0.05..0.15).contains(&rate), "selectivity {rate}");
    }

    #[test]
    fn selection_jobs_share_scan_correctly() {
        let store = lineitem_store();
        let jobs = [
            SelectionJob {
                quantity_threshold: 45,
            },
            SelectionJob {
                quantity_threshold: 25,
            },
            SelectionJob {
                quantity_threshold: 49,
            },
        ];
        let refs: Vec<&SelectionJob> = jobs.iter().collect();
        let merged = run_merged(&refs, &store, &ExecConfig::default());
        for (j, m) in jobs.iter().zip(&merged) {
            let solo = run_job(j, &store, &ExecConfig::default());
            assert_eq!(m.records, solo.records, "threshold {}", j.quantity_threshold);
        }
        // Lower threshold selects strictly more.
        assert!(merged[1].records.len() > merged[0].records.len());
        assert!(merged[0].records.len() > merged[2].records.len());
    }

    #[test]
    fn grep_finds_exactly_the_matching_lines() {
        let store = text_store();
        let g = TextGen::new(2000, 1.1);
        let needle = g.word(3).to_string(); // a frequent word
        let job = GrepJob {
            pattern: needle.clone(),
        };
        let out = run_job(&job, &store, &ExecConfig::default());
        let expected: usize = store
            .iter()
            .flat_map(memchr::lines)
            .filter(|l| memchr::find(l, needle.as_bytes()).is_some())
            .count();
        let total: i64 = out.records.values().sum();
        assert_eq!(total as usize, expected);
        for line in out.records.keys() {
            assert!(line.contains(needle.as_str()));
        }
    }

    #[test]
    fn grep_shares_scan_with_wordcount_family() {
        // Grep jobs share scans with each other (same K/V schema as
        // PatternWordCount: String -> i64).
        let store = text_store();
        let jobs = [
            GrepJob { pattern: "ba".into() },
            GrepJob { pattern: "zu".into() },
        ];
        let refs: Vec<&GrepJob> = jobs.iter().collect();
        let merged = run_merged(&refs, &store, &ExecConfig::default());
        for (j, m) in jobs.iter().zip(&merged) {
            let solo = run_job(j, &store, &ExecConfig::default());
            assert_eq!(m.records, solo.records, "pattern {}", j.pattern);
        }
    }

    #[test]
    fn histogram_conserves_token_count() {
        let store = text_store();
        let out = run_job(&WordLengthHistogram, &store, &ExecConfig::default());
        let total: i64 = out.records.values().sum();
        let expected = store
            .iter()
            .map(|b| memchr::tokens(b).count())
            .sum::<usize>() as i64;
        assert_eq!(total, expected);
        // Tiny key space: far fewer keys than tokens.
        assert!(out.records.len() < 30, "{} length buckets", out.records.len());
    }

    #[test]
    fn selection_keys_sort_numerically() {
        let store = lineitem_store();
        let out = run_job(
            &SelectionJob::paper_selectivity(),
            &store,
            &ExecConfig::default(),
        );
        let keys: Vec<u64> = out.records.keys().map(|k| k.parse().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
