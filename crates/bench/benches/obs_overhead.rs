//! Telemetry overhead bound: instrumented-vs-disabled comparison.
//!
//! The `s3-obs` design goal is that *disabled* telemetry costs one branch
//! per instrumentation site — the acceptance bar is that `off` and the
//! plain constructors benchmark within noise (<2%) of each other. The
//! `metrics`/`full` variants measure what enabling costs, for the record:
//!
//! - `single_job/off` vs `single_job/full`: `run_job_on` through
//!   `run_job_observed` with `Obs::off()` vs a live handle;
//! - `shared_scan/off` vs `shared_scan/metrics` vs `shared_scan/full`:
//!   an unobserved server vs observed with tracing disabled (metrics
//!   only) vs observed with the trace recorder on.
//!
//! ```text
//! cargo bench -p s3-bench --bench obs_overhead
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use s3_engine::{run_job_observed, BlockStore, ExecConfig, Obs, SharedScanServer, WorkerPool};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;

const THREADS: usize = 2;
const SHARED_JOBS: usize = 4;

fn corpus() -> BlockStore {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), 2 << 20);
    BlockStore::from_text(&text, 4 << 10)
}

fn prefixes(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("{}a", (b'b' + i as u8) as char))
        .collect()
}

fn shared_scan(store: &BlockStore, obs: &Obs) {
    let server = SharedScanServer::new_observed(store.clone(), 1, THREADS, obs);
    let handles: Vec<_> = prefixes(SHARED_JOBS)
        .into_iter()
        .map(|p| server.submit(PatternWordCount::prefix(p)))
        .collect();
    for h in handles {
        h.wait().expect("job completed");
    }
    server.shutdown();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let store = corpus();
    let cfg = ExecConfig {
        num_threads: THREADS,
        num_reducers: 8,
    ..ExecConfig::default()
    };
    let job = PatternWordCount::all();

    let mut g = c.benchmark_group("single_job");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));
    g.bench_function("off", |b| {
        let pool = WorkerPool::new(THREADS);
        b.iter(|| run_job_observed(&pool, &job, &store, &cfg, &Obs::off()));
    });
    g.bench_function("full", |b| {
        let obs = Obs::new();
        let pool = WorkerPool::new_observed(THREADS, "bench", &obs);
        b.iter(|| run_job_observed(&pool, &job, &store, &cfg, &obs));
    });
    g.finish();

    let mut g = c.benchmark_group("shared_scan");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(store.total_bytes() as u64));
    g.bench_function("off", |b| {
        b.iter(|| shared_scan(&store, &Obs::off()));
    });
    g.bench_function("metrics", |b| {
        // Metrics registry live, trace recorder gated off: the sustained
        // production configuration.
        let obs = Obs::new();
        obs.core().expect("on").tracer.set_enabled(false);
        b.iter(|| shared_scan(&store, &obs));
    });
    g.bench_function("full", |b| {
        let obs = Obs::new();
        b.iter(|| shared_scan(&store, &obs));
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
