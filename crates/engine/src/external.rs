//! Bounded-memory execution: Hadoop's map-side spill/sort and reduce-side
//! merge, for real.
//!
//! [`run_job`](crate::run_job) holds every intermediate record in memory.
//! Real MapReduce cannot: map tasks sort and **spill** their output buffer
//! to disk whenever it fills, and the reduce side **merges** the sorted
//! runs. This module implements that pipeline:
//!
//! - map workers buffer `(partition, key, value)` triples; at
//!   [`ExternalConfig::spill_records`] they sort the buffer by
//!   `(partition, key)` and write one run file (JSON lines);
//! - per partition, the reduce phase streams all runs through a k-way
//!   merge, groups equal keys, and reduces them.
//!
//! Outputs are byte-identical to the in-memory engine — that equivalence
//! is what the cost model's `sort_s_per_mb` term abstracts.

use crate::exec::{partition_of, ExecConfig, JobOutput, ScanStats};
use crate::partition::{key_hash, KeySketch, PartitionPlan};
use crate::pool::WorkerPool;
use crate::store::BlockStore;
use crate::types::MapReduceJob;
use s3_obs::trace::Ids;
use s3_obs::Obs;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Parameters of the external (spilling) execution.
#[derive(Debug, Clone)]
pub struct ExternalConfig {
    /// Threads and reducer count (as in the in-memory engine).
    pub exec: ExecConfig,
    /// Records a map worker buffers before sorting and spilling a run.
    pub spill_records: usize,
    /// Directory for spill files; a unique per-run subdirectory is created
    /// inside it and removed afterwards. Defaults to the OS temp dir.
    pub tmp_dir: Option<PathBuf>,
}

impl Default for ExternalConfig {
    fn default() -> Self {
        ExternalConfig {
            exec: ExecConfig::default(),
            spill_records: 100_000,
            tmp_dir: None,
        }
    }
}

/// Counters specific to external execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs written.
    pub spills: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
}

#[derive(Serialize, Deserialize)]
struct SpillRecord<K, V> {
    p: u32,
    k: K,
    v: V,
}

static RUN_DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn make_run_dir(cfg: &ExternalConfig) -> std::io::Result<PathBuf> {
    let base = cfg
        .tmp_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let unique = format!(
        "s3-engine-spill-{}-{}",
        std::process::id(),
        RUN_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let dir = base.join(unique);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// A job's output paired with its spill counters.
pub type ExternalOutput<K, Out> = (JobOutput<K, Out>, SpillStats);

/// Per-job outputs of a merged run paired with the shared spill counters.
pub type MergedExternalOutput<K, Out> = (Vec<JobOutput<K, Out>>, SpillStats);

/// Run one job with bounded memory, spilling sorted runs to disk.
///
/// Returns the job output (identical to [`crate::run_job`]) plus spill
/// counters.
///
/// # Errors
/// Propagates I/O errors from the spill directory.
///
/// # Panics
/// Panics on zero threads/reducers/spill size.
pub fn run_job_external<J>(
    job: &J,
    store: &BlockStore,
    cfg: &ExternalConfig,
) -> std::io::Result<ExternalOutput<J::K, J::Out>>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    run_job_external_observed(job, store, cfg, &Obs::off())
}

/// [`run_job_external`] with telemetry: records a `spill` span per sorted
/// run (the `n` id carries its byte size), a `merge_partition` span per
/// reduce-side merge, and the `engine.shuffle_bytes` / `engine.spill_runs`
/// counters into `obs`. Passing [`Obs::off`] is exactly
/// [`run_job_external`].
///
/// # Errors
/// Propagates I/O errors from the spill directory.
///
/// # Panics
/// Panics on zero threads/reducers/spill size.
pub fn run_job_external_observed<J>(
    job: &J,
    store: &BlockStore,
    cfg: &ExternalConfig,
    obs: &Obs,
) -> std::io::Result<ExternalOutput<J::K, J::Out>>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    assert!(cfg.exec.num_threads > 0, "need at least one thread");
    assert!(cfg.spill_records > 0, "spill buffer must hold records");

    let dir = make_run_dir(cfg)?;
    let result = run_inner(job, store, cfg, &dir, obs);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_inner<J>(
    job: &J,
    store: &BlockStore,
    cfg: &ExternalConfig,
    dir: &std::path::Path,
    obs: &Obs,
) -> std::io::Result<ExternalOutput<J::K, J::Out>>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    let core = obs.core();
    let num_blocks = store.num_blocks();
    let next_block = AtomicUsize::new(0);
    let spill_counter = AtomicUsize::new(0);
    let spill_bytes = AtomicU64::new(0);
    // Degenerate reducer counts clamp to one partition instead of faulting.
    let num_reducers = cfg.exec.num_reducers.max(1);
    let weighted = cfg.exec.partition.is_weighted();
    // Spill files fix partition ids at write time — before any global key
    // sketch exists — so the weighted plan operates at spill-bin
    // granularity: over-partition the hash space into fine bins, count
    // records per bin during the scan, and let the same [`PartitionPlan`]
    // machinery group fine bins into weight-balanced merge groups.
    let nfine = if weighted { num_reducers * 8 } else { num_reducers };

    // ---- map phase: buffer, sort, spill (on a per-call worker pool) ----
    type MapOut = (Vec<PathBuf>, u64, u64, Vec<u64>);
    let pool = WorkerPool::new(cfg.exec.num_threads);
    let worker_results: Vec<std::io::Result<MapOut>> =
        pool.broadcast(cfg.exec.num_threads, &|_| -> std::io::Result<MapOut> {
            let mut buffer: Vec<(u32, J::K, J::V)> = Vec::new();
            let mut runs: Vec<PathBuf> = Vec::new();
            let mut emitted = 0u64;
            let mut bytes = 0u64;
            let mut bin_counts = vec![0u64; nfine];

            let spill = |buffer: &mut Vec<(u32, J::K, J::V)>,
                         runs: &mut Vec<PathBuf>|
             -> std::io::Result<()> {
                if buffer.is_empty() {
                    return Ok(());
                }
                let spill_t0 = core.map(|c| c.tracer.now_us());
                buffer.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                let id = spill_counter.fetch_add(1, Ordering::Relaxed);
                let path = dir.join(format!("run-{id}.jsonl"));
                let mut w = BufWriter::new(File::create(&path)?);
                let mut written = 0u64;
                // Combine-on-spill (Hadoop runs the combiner on
                // each sorted spill): fold each (partition, key)
                // group before writing.
                let mut drain = buffer.drain(..).peekable();
                while let Some((p, k, v)) = drain.next() {
                    let mut values = vec![v];
                    while drain
                        .peek()
                        .is_some_and(|(p2, k2, _)| *p2 == p && *k2 == k)
                    {
                        values.push(drain.next().expect("peeked").2);
                    }
                    for v in job.combine(&k, values) {
                        let line = serde_json::to_string(&SpillRecord {
                            p,
                            k: &k,
                            v,
                        })
                        .expect("spill records serialize");
                        written += line.len() as u64 + 1;
                        w.write_all(line.as_bytes())?;
                        w.write_all(b"\n")?;
                    }
                }
                drop(drain);
                w.flush()?;
                spill_bytes.fetch_add(written, Ordering::Relaxed);
                if let (Some(c), Some(t0)) = (core, spill_t0) {
                    c.tracer.span("spill", t0, Ids::none().jobs(written));
                }
                runs.push(path);
                Ok(())
            };

            loop {
                let idx = next_block.fetch_add(1, Ordering::Relaxed);
                if idx >= num_blocks {
                    break;
                }
                let block = store.block(idx);
                bytes += block.len() as u64;
                for line in memchr::lines(block) {
                    job.map_bytes(line, &mut |k, v| {
                        emitted += 1;
                        let p = partition_of(&k, nfine) as u32;
                        bin_counts[p as usize] += 1;
                        buffer.push((p, k, v));
                    });
                    if buffer.len() >= cfg.spill_records {
                        spill(&mut buffer, &mut runs)?;
                    }
                }
            }
            spill(&mut buffer, &mut runs)?;
            Ok((runs, emitted, bytes, bin_counts))
        });

    let mut all_runs: Vec<PathBuf> = Vec::new();
    let mut map_output_records = 0u64;
    let mut bytes_scanned = 0u64;
    let mut bin_counts = vec![0u64; nfine];
    for r in worker_results {
        let (runs, emitted, bytes, counts) = r?;
        all_runs.extend(runs);
        map_output_records += emitted;
        bytes_scanned += bytes;
        for (b, c) in counts.into_iter().enumerate() {
            bin_counts[b] += c;
        }
    }
    let stats = SpillStats {
        spills: all_runs.len() as u64,
        spill_bytes: spill_bytes.load(Ordering::Relaxed),
    };
    if let Some(c) = core {
        // Spill files *are* this engine's shuffle: every intermediate byte
        // crossing from map to reduce goes through them.
        let m = &c.metrics;
        m.counter("engine.shuffle_bytes").add(stats.spill_bytes);
        m.counter("engine.spill_runs").add(stats.spills);
        m.counter("engine.map_records").add(map_output_records);
        m.counter("engine.blocks_scanned").add(num_blocks as u64);
        m.counter("engine.bytes_scanned").add(bytes_scanned);
    }

    // ---- reduce phase: per partition, k-way merge of the sorted runs ----
    // Weighted: feed the per-fine-bin record counts through the shared
    // plan (each fine bin is one "key" weighted by its records), then run
    // the heaviest merge group's bins first so the longest merges start
    // earliest. Hash: the classic in-order sweep. Either way every key
    // lives in exactly one fine bin, so the output BTreeMap is identical.
    let order: Vec<u32> = if weighted {
        let mut sketch = KeySketch::new();
        for (f, &c) in bin_counts.iter().enumerate() {
            sketch.observe(key_hash(&(f as u64)), c);
        }
        let plan = PartitionPlan::build(
            &sketch.finish(),
            num_reducers,
            cfg.exec.partition.split_factor_x1000(),
        );
        let mut groups: Vec<(u64, Vec<u32>)> = vec![(0, Vec::new()); plan.nbins()];
        for (f, &c) in bin_counts.iter().enumerate() {
            let g = plan.bin_of_hash(key_hash(&(f as u64)));
            groups[g].0 += c;
            groups[g].1.push(f as u32);
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.0));
        groups.into_iter().flat_map(|(_, fs)| fs).collect()
    } else {
        (0..num_reducers as u32).collect()
    };
    let mut records: BTreeMap<J::K, J::Out> = BTreeMap::new();
    for partition in order {
        let merge_t0 = core.map(|c| c.tracer.now_us());
        merge_partition(job, &all_runs, partition, &mut records)?;
        if let (Some(c), Some(t0)) = (core, merge_t0) {
            c.tracer
                .span("merge_partition", t0, Ids::none().jobs(partition as u64));
        }
    }

    let out = JobOutput {
        stats: ScanStats {
            blocks_scanned: num_blocks as u64,
            bytes_scanned,
            map_output_records,
            reduce_output_records: records.len() as u64,
        },
        records,
    };
    Ok((out, stats))
}

/// Stream one partition's records out of every run (each run is sorted by
/// `(partition, key)`), k-way merge them by key, and reduce each group.
fn merge_partition<J>(
    job: &J,
    runs: &[PathBuf],
    partition: u32,
    out: &mut BTreeMap<J::K, J::Out>,
) -> std::io::Result<()>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    // One streaming cursor per run, positioned at this partition's records.
    struct Cursor<K, V> {
        reader: std::io::Lines<BufReader<File>>,
        head: Option<(K, V)>,
    }

    let mut cursors: Vec<Cursor<J::K, J::V>> = Vec::new();
    for path in runs {
        let mut reader = BufReader::new(File::open(path)?).lines();
        // Advance to the first record of this partition.
        let mut head = None;
        for line in reader.by_ref() {
            let rec: SpillRecord<J::K, J::V> =
                serde_json::from_str(&line?).expect("spill records parse");
            match rec.p.cmp(&partition) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => {
                    head = Some((rec.k, rec.v));
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        if head.is_some() {
            cursors.push(Cursor { reader, head });
        }
    }

    // K-way merge by key using a heap of (key, cursor index). Keys are
    // cloned into the heap; values stream.
    let mut heap: BinaryHeap<Reverse<(J::K, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter().enumerate() {
        let (k, _) = c.head.as_ref().expect("cursor has a head");
        heap.push(Reverse((k.clone(), i)));
    }

    let mut current: Option<(J::K, Vec<J::V>)> = None;
    while let Some(Reverse((key, i))) = heap.pop() {
        // Take the head value and advance cursor i within this partition.
        let (_, value) = cursors[i].head.take().expect("head present");
        if let Some(line) = cursors[i].reader.next() {
            let rec: SpillRecord<J::K, J::V> =
                serde_json::from_str(&line?).expect("spill records parse");
            if rec.p == partition {
                heap.push(Reverse((rec.k.clone(), i)));
                cursors[i].head = Some((rec.k, rec.v));
            }
        }

        match &mut current {
            Some((k, vs)) if *k == key => vs.push(value),
            _ => {
                if let Some((k, vs)) = current.take() {
                    if let Some(o) = job.reduce(&k, &vs) {
                        out.insert(k, o);
                    }
                }
                current = Some((key, vec![value]));
            }
        }
    }
    if let Some((k, vs)) = current.take() {
        if let Some(o) = job.reduce(&k, &vs) {
            out.insert(k, o);
        }
    }
    Ok(())
}

/// Run every job in `jobs` over one shared scan with bounded memory:
/// intermediate tuples are tagged with their job index (as in
/// [`crate::run_merged`]) and spilled sorted by `(partition, job, key)`.
///
/// Returns one output per job plus the combined spill counters.
///
/// # Errors
/// Propagates I/O errors from the spill directory.
///
/// # Panics
/// Panics on an empty job list or zero threads/reducers/spill size.
pub fn run_merged_external<J>(
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExternalConfig,
) -> std::io::Result<MergedExternalOutput<J::K, J::Out>>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    run_merged_external_observed(jobs, store, cfg, &Obs::off())
}

/// [`run_merged_external`] with telemetry — the merged-scan counterpart of
/// [`run_job_external_observed`], recording the same spans and counters
/// for the single shared spilling pass.
///
/// # Errors
/// Propagates I/O errors from the spill directory.
///
/// # Panics
/// Panics on an empty job list or zero threads/reducers/spill size.
pub fn run_merged_external_observed<J>(
    jobs: &[&J],
    store: &BlockStore,
    cfg: &ExternalConfig,
    obs: &Obs,
) -> std::io::Result<MergedExternalOutput<J::K, J::Out>>
where
    J: MapReduceJob,
    J::K: Serialize + DeserializeOwned,
    J::V: Serialize + DeserializeOwned,
{
    assert!(!jobs.is_empty(), "merged run needs at least one job");
    // Wrap each job's key as (job_index, key): the tagged-tuple encoding,
    // expressed through the single-job external runner.
    struct Tagged<'a, J>(&'a [&'a J]);
    impl<'a, J: MapReduceJob> MapReduceJob for Tagged<'a, J> {
        type K = (usize, J::K);
        type V = J::V;
        type Out = J::Out;
        fn map(&self, line: &str, emit: &mut dyn FnMut(Self::K, Self::V)) {
            for (ji, job) in self.0.iter().enumerate() {
                job.map(line, &mut |k, v| emit((ji, k), v));
            }
        }
        fn map_bytes(&self, line: &[u8], emit: &mut dyn FnMut(Self::K, Self::V)) {
            for (ji, job) in self.0.iter().enumerate() {
                job.map_bytes(line, &mut |k, v| emit((ji, k), v));
            }
        }
        fn combine(&self, key: &Self::K, values: Vec<Self::V>) -> Vec<Self::V> {
            self.0[key.0].combine(&key.1, values)
        }
        fn reduce(&self, key: &Self::K, values: &[Self::V]) -> Option<Self::Out> {
            self.0[key.0].reduce(&key.1, values)
        }
    }

    let tagged = Tagged(jobs);
    let (merged, spills) = run_job_external_observed(&tagged, store, cfg, obs)?;

    // Split the tagged output back into per-job relations; per-job map
    // record counts are not separable through the tagged encoding, so each
    // output reports the shared scan volume and its own reduce output.
    let mut outputs: Vec<JobOutput<J::K, J::Out>> = (0..jobs.len())
        .map(|_| JobOutput {
            records: BTreeMap::new(),
            stats: ScanStats {
                blocks_scanned: merged.stats.blocks_scanned,
                bytes_scanned: merged.stats.bytes_scanned,
                map_output_records: 0,
                reduce_output_records: 0,
            },
        })
        .collect();
    for ((ji, k), o) in merged.records {
        outputs[ji].records.insert(k, o);
    }
    for o in &mut outputs {
        o.stats.reduce_output_records = o.records.len() as u64;
    }
    Ok((outputs, spills))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_job;
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        let text =
            "delta echo alpha bravo alpha\ncharlie delta echo alpha\nbravo charlie delta\n"
                .repeat(200);
        BlockStore::from_text(&text, 512)
    }

    fn cfg(spill_records: usize) -> ExternalConfig {
        ExternalConfig {
            exec: ExecConfig {
                num_threads: 3,
                num_reducers: 4,
            ..ExecConfig::default()
            },
            spill_records,
            tmp_dir: None,
        }
    }

    #[test]
    fn external_matches_in_memory() {
        let s = store();
        let job = PrefixCount { prefix: "".into() };
        let reference = run_job(&job, &s, &cfg(1000).exec);
        let (out, spills) = run_job_external(&job, &s, &cfg(1000)).expect("io ok");
        assert_eq!(out.records, reference.records);
        assert_eq!(out.stats.map_output_records, reference.stats.map_output_records);
        assert!(spills.spills >= 1);
        assert!(spills.spill_bytes > 0);
    }

    #[test]
    fn tiny_spill_buffer_forces_many_runs_same_answer() {
        let s = store();
        let job = PrefixCount { prefix: "".into() };
        let reference = run_job(&job, &s, &cfg(7).exec);
        let (out, spills) = run_job_external(&job, &s, &cfg(7)).expect("io ok");
        assert_eq!(out.records, reference.records);
        assert!(
            spills.spills > 50,
            "a 7-record buffer must spill constantly: {} runs",
            spills.spills
        );
    }

    #[test]
    fn filtered_job_with_empty_partitions() {
        let s = store();
        let job = PrefixCount { prefix: "alp".into() };
        let reference = run_job(&job, &s, &cfg(16).exec);
        let (out, _) = run_job_external(&job, &s, &cfg(16)).expect("io ok");
        assert_eq!(out.records, reference.records);
        assert_eq!(out.records.len(), 1); // only "alpha"
    }

    #[test]
    fn no_matches_yields_empty_output() {
        let s = store();
        let job = PrefixCount { prefix: "zzz".into() };
        let (out, spills) = run_job_external(&job, &s, &cfg(16)).expect("io ok");
        assert!(out.records.is_empty());
        assert_eq!(spills.spills, 0, "nothing emitted, nothing spilled");
    }

    #[test]
    fn merged_external_matches_solo_runs() {
        let s = store();
        let jobs = [
            PrefixCount { prefix: "a".into() },
            PrefixCount { prefix: "d".into() },
            PrefixCount { prefix: "".into() },
        ];
        let refs: Vec<&PrefixCount> = jobs.iter().collect();
        let (outs, spills) = run_merged_external(&refs, &s, &cfg(32)).expect("io ok");
        assert_eq!(outs.len(), 3);
        assert!(spills.spills > 0);
        for (job, out) in jobs.iter().zip(&outs) {
            let solo = run_job(job, &s, &cfg(32).exec);
            assert_eq!(out.records, solo.records, "prefix {:?}", job.prefix);
        }
        // One shared scan.
        assert_eq!(outs[0].stats.bytes_scanned as usize, s.total_bytes());
    }

    #[test]
    fn spill_directory_is_cleaned_up() {
        let base = std::env::temp_dir().join("s3-engine-cleanup-test");
        std::fs::create_dir_all(&base).expect("mk base");
        let cfg = ExternalConfig {
            tmp_dir: Some(base.clone()),
            ..cfg(16)
        };
        let job = PrefixCount { prefix: "".into() };
        run_job_external(&job, &store(), &cfg).expect("io ok");
        let leftovers = std::fs::read_dir(&base).expect("readable").count();
        assert_eq!(leftovers, 0, "spill subdirectory must be removed");
        let _ = std::fs::remove_dir_all(&base);
    }
}
