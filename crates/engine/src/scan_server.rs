//! A real, threaded S³ runtime: the paper's circular shared scan as a
//! long-running service.
//!
//! [`SharedScanServer`] owns a [`BlockStore`] organized into segments. Jobs
//! are submitted at any time from any thread; each job joins the scan at
//! the *next* segment boundary, shares every segment scan with whoever else
//! is active, wraps around the end of the file, and completes after exactly
//! one revolution — the S³ execution model (Sections IV-B/IV-C), executed
//! for real rather than simulated.
//!
//! ## Runtime shape
//!
//! The coordinator thread owns two persistent [`WorkerPool`]s created once
//! at server start:
//!
//! - a **scan pool** that executes every segment iteration (previously each
//!   iteration spawned and joined `num_threads` OS threads — a fixed cost
//!   per segment that punished small segments, exactly the configurations
//!   where S³'s responsiveness should shine);
//! - a **reduce pool** that runs job finalization (combine + reduce,
//!   sharded by key hash) *off* the coordinator, so one job finishing a
//!   heavy reduce never stalls the segment cadence of the jobs still
//!   scanning.
//!
//! Map-side state is **worker-persistent**: each pool worker keeps one
//! accumulator per active job across the whole revolution (streamed via
//! [`MapReduceJob::combine_fold`] when the job declares a fold combiner),
//! so segments no longer pay a merge-into-coordinator step.
//!
//! ```
//! use s3_engine::{BlockStore, MapReduceJob, SharedScanServer};
//!
//! struct Count;
//! impl MapReduceJob for Count {
//!     type K = String; type V = i64; type Out = i64;
//!     fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
//!         for w in line.split_whitespace() { emit(w.into(), 1); }
//!     }
//!     fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> { Some(v.iter().sum()) }
//! }
//!
//! let store = BlockStore::from_text("a b a\nc a b\n", 6);
//! let server = SharedScanServer::new(store, 1, 2);
//! let h = server.submit(Count);
//! let out = h.wait();
//! assert_eq!(out.records["a"], 3);
//! server.shutdown();
//! ```

use crate::exec::{JobOutput, ScanStats};
use crate::pool::WorkerPool;
use crate::store::BlockStore;
use crate::types::MapReduceJob;
use fxhash::FxHashMap;
use parking_lot::{Condvar, Mutex};
use s3_obs::trace::Ids;
use s3_obs::{Counter, Gauge, Histogram, Obs, TraceRecorder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The server's pre-resolved instruments (all under `engine.*`; see the
/// README "Observability" section for the full catalog). Present only on
/// servers built with [`SharedScanServer::new_observed`], so the
/// unobserved hot path pays one `Option` check per instrumentation site.
struct ServerObs {
    obs: Obs,
    jobs_submitted: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    segments: Arc<Counter>,
    blocks: Arc<Counter>,
    bytes: Arc<Counter>,
    map_records: Arc<Counter>,
    fold_hits: Arc<Counter>,
    active_jobs: Arc<Gauge>,
    /// Gap between consecutive segment-scan starts while jobs are active.
    cadence: Arc<Histogram>,
    /// Duration of one segment scan.
    seg_scan: Arc<Histogram>,
    /// Submit → start of the first segment scan that includes the job.
    admission: Arc<Histogram>,
    /// Submit → output published.
    job_latency: Arc<Histogram>,
    /// Duration of one reduce-pool finalization shard.
    reduce_shard: Arc<Histogram>,
}

impl ServerObs {
    fn new(obs: &Obs) -> Option<Arc<ServerObs>> {
        let m = &obs.core()?.metrics;
        Some(Arc::new(ServerObs {
            obs: obs.clone(),
            jobs_submitted: m.counter("engine.jobs_submitted"),
            jobs_completed: m.counter("engine.jobs_completed"),
            segments: m.counter("engine.segments_scanned"),
            blocks: m.counter("engine.blocks_scanned"),
            bytes: m.counter("engine.bytes_scanned"),
            map_records: m.counter("engine.map_records"),
            fold_hits: m.counter("engine.combiner_fold_hits"),
            active_jobs: m.gauge("engine.active_jobs"),
            cadence: m.histogram("engine.segment_cadence_us"),
            seg_scan: m.histogram("engine.segment_scan_us"),
            admission: m.histogram("engine.admission_latency_us"),
            job_latency: m.histogram("engine.job_latency_us"),
            reduce_shard: m.histogram("engine.reduce_shard_us"),
        }))
    }

    fn tracer(&self) -> &TraceRecorder {
        &self.obs.core().expect("ServerObs only exists when on").tracer
    }
}

/// Map-side accumulator for one job on one worker: fold jobs stream into
/// one value per key, buffering jobs keep the runs for a later combine.
enum JobAcc<J: MapReduceJob> {
    Fold(FxHashMap<J::K, J::V>),
    Buf(FxHashMap<J::K, Vec<J::V>>),
}

impl<J: MapReduceJob> JobAcc<J> {
    fn new(fold: bool) -> Self {
        if fold {
            JobAcc::Fold(FxHashMap::default())
        } else {
            JobAcc::Buf(FxHashMap::default())
        }
    }

    fn push(&mut self, job: &J, k: J::K, v: J::V) {
        match self {
            JobAcc::Fold(map) => match map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    job.combine_fold(e.get_mut(), v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            },
            JobAcc::Buf(map) => map.entry(k).or_default().push(v),
        }
    }
}

/// One worker's accumulated state for one job over the revolution so far.
struct JobPartial<J: MapReduceJob> {
    emitted: u64,
    acc: JobAcc<J>,
}

/// Per-worker slot: the partials of every job this worker has scanned for.
type Slot<J> = Vec<(u64, JobPartial<J>)>;

/// State of one job inside the server.
struct ActiveJob<J: MapReduceJob> {
    id: u64,
    job: Arc<J>,
    handle: Arc<HandleState<J::K, J::Out>>,
    /// Segments still to process (counts down from the segment count).
    segments_remaining: usize,
    /// Blocks this job's revolution has actually covered.
    blocks_seen: u64,
    /// Bytes this job's revolution has actually covered.
    bytes_seen: u64,
    /// Submission instant in tracer microseconds (0 when unobserved).
    submitted_us: u64,
    /// Whether the admission latency has been recorded yet.
    admitted: bool,
}

/// Shared completion slot a [`JobHandle`] waits on.
struct HandleState<K: Ord, Out> {
    done: Mutex<Option<JobOutput<K, Out>>>,
    cv: Condvar,
}

/// A ticket for a submitted job; [`JobHandle::wait`] blocks until the job's
/// revolution completes and returns its output.
pub struct JobHandle<K: Ord, Out> {
    state: Arc<HandleState<K, Out>>,
}

impl<K: Ord, Out> JobHandle<K, Out> {
    /// Block until the job finishes; returns its output relation and stats.
    pub fn wait(self) -> JobOutput<K, Out> {
        let mut guard = self.state.done.lock();
        loop {
            if let Some(out) = guard.take() {
                return out;
            }
            self.state.cv.wait(&mut guard);
        }
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<JobOutput<K, Out>> {
        self.state.done.lock().take()
    }
}

struct ServerShared<J: MapReduceJob> {
    store: BlockStore,
    /// Segment boundaries: segment `s` covers blocks `cuts[s]..cuts[s+1]`.
    cuts: Vec<usize>,
    /// Byte prefix sums: blocks `a..b` hold `byte_cuts[b] - byte_cuts[a]`
    /// bytes — per-job byte accounting without re-touching the data.
    byte_cuts: Vec<u64>,
    pending: Mutex<Vec<ActiveJob<J>>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    next_job_id: AtomicU64,
    // The three counters below are pure instrumentation: monotonic totals
    // that synchronize nothing and order nothing. Every access is
    // `Ordering::Relaxed` — readers may observe a total that is a few
    // in-flight increments stale, never a torn or decreasing one. (They
    // previously mixed SeqCst loads, paying fence costs for no guarantee
    // the callers used.)
    /// Total block scans performed (shared scans count once).
    blocks_scanned: AtomicU64,
    /// Total segment iterations executed.
    iterations: AtomicU64,
    /// Worker threads the coordinator's pools have spawned (set once at
    /// startup; never grows, which is the point).
    pool_threads_spawned: AtomicU64,
    /// Telemetry, when built via [`SharedScanServer::new_observed`].
    obs: Option<Arc<ServerObs>>,
}

/// A long-running shared-scan service over one block store.
///
/// All jobs must be of one concrete [`MapReduceJob`] type `J` (as with
/// [`crate::run_merged`], merged jobs must agree on their intermediate
/// schema). The server runs a coordinator thread that performs one merged
/// sub-job per segment iteration on a persistent pool of `num_threads`
/// scan workers, plus `num_threads` reduce workers for job finalization.
pub struct SharedScanServer<J: MapReduceJob + 'static> {
    shared: Arc<ServerShared<J>>,
    coordinator: Option<JoinHandle<()>>,
}

impl<J: MapReduceJob + 'static> SharedScanServer<J> {
    /// Start a server over `store` with segments of `blocks_per_segment`
    /// blocks and `num_threads` scan workers.
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn new(store: BlockStore, blocks_per_segment: usize, num_threads: usize) -> Self {
        SharedScanServer::new_observed(store, blocks_per_segment, num_threads, &Obs::off())
    }

    /// Start an **observed** server: every submit/admission/segment
    /// scan/reduce shard/completion records into `obs`'s metrics registry
    /// and trace recorder (see the README "Observability" section for the
    /// instrument and span catalog). Passing [`Obs::off`] is exactly
    /// [`SharedScanServer::new`].
    ///
    /// # Panics
    /// Panics if `blocks_per_segment` or `num_threads` is zero.
    pub fn new_observed(
        store: BlockStore,
        blocks_per_segment: usize,
        num_threads: usize,
        obs: &Obs,
    ) -> Self {
        assert!(blocks_per_segment > 0, "segments need at least one block");
        assert!(num_threads > 0, "need at least one worker");
        let n = store.num_blocks();
        let mut cuts: Vec<usize> = (0..n).step_by(blocks_per_segment).collect();
        cuts.push(n);
        let mut byte_cuts = Vec::with_capacity(n + 1);
        byte_cuts.push(0u64);
        for i in 0..n {
            byte_cuts.push(byte_cuts[i] + store.block(i).len() as u64);
        }

        let shared = Arc::new(ServerShared {
            store,
            cuts,
            byte_cuts,
            pending: Mutex::new(Vec::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job_id: AtomicU64::new(0),
            blocks_scanned: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            pool_threads_spawned: AtomicU64::new(0),
            obs: ServerObs::new(obs),
        });

        let coord_shared = Arc::clone(&shared);
        let coordinator = std::thread::Builder::new()
            .name("s3-scan-coordinator".into())
            .spawn(move || coordinator_loop(coord_shared, num_threads))
            .expect("spawning the coordinator thread");

        SharedScanServer {
            shared,
            coordinator: Some(coordinator),
        }
    }

    /// Number of segments in the circular scan.
    pub fn num_segments(&self) -> usize {
        self.shared.cuts.len() - 1
    }

    /// Total block scans performed so far (a scan shared by k jobs counts
    /// once — that is the point).
    pub fn blocks_scanned(&self) -> u64 {
        self.shared.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Segment iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.shared.iterations.load(Ordering::Relaxed)
    }

    /// Worker threads this server's pools have spawned over the server's
    /// whole lifetime (0 until the coordinator finishes starting up).
    /// Always `2 * num_threads` — scan pool plus reduce pool — no matter
    /// how many jobs or segment iterations the server executes; the
    /// instrumentation tests assert thread creation is O(servers).
    pub fn pool_threads_spawned(&self) -> u64 {
        self.shared.pool_threads_spawned.load(Ordering::Relaxed)
    }

    /// Submit a job; it joins the scan at the next segment boundary.
    pub fn submit(&self, job: J) -> JobHandle<J::K, J::Out> {
        let state = Arc::new(HandleState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        let submitted_us = match &self.shared.obs {
            Some(o) => {
                o.jobs_submitted.inc();
                o.tracer().instant("submit", Ids::job(id));
                o.tracer().now_us()
            }
            None => 0,
        };
        let active = ActiveJob {
            id,
            job: Arc::new(job),
            handle: Arc::clone(&state),
            segments_remaining: self.num_segments(),
            blocks_seen: 0,
            bytes_seen: 0,
            submitted_us,
            admitted: false,
        };
        self.shared.pending.lock().push(active);
        self.shared.wakeup.notify_all();
        JobHandle { state }
    }

    /// Stop accepting useful work and join the coordinator once all
    /// submitted jobs have completed. Finalization tasks already queued on
    /// the reduce pool are drained before this returns, so every submitted
    /// job's output is published.
    pub fn shutdown(mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            h.join().expect("coordinator panicked");
        }
    }

    /// Set the shutdown flag and wake the coordinator without losing the
    /// wakeup: taking the pending lock before notifying guarantees the
    /// coordinator is either before its shutdown check (it will see the
    /// flag) or already parked in `wait` (it will receive the notify) —
    /// never in between.
    fn signal_shutdown(shared: &ServerShared<J>) {
        shared.shutdown.store(true, Ordering::SeqCst);
        let _pending = shared.pending.lock();
        shared.wakeup.notify_all();
    }
}

impl<J: MapReduceJob + 'static> Drop for SharedScanServer<J> {
    fn drop(&mut self) {
        Self::signal_shutdown(&self.shared);
        if let Some(h) = self.coordinator.take() {
            let _ = h.join();
        }
    }
}

fn coordinator_loop<J: MapReduceJob + 'static>(shared: Arc<ServerShared<J>>, num_threads: usize) {
    // Both pools live exactly as long as the coordinator: when this
    // function returns, their Drop impls drain any queued finalization
    // tasks before joining the workers, so shutdown never loses outputs.
    let obs_handle = shared
        .obs
        .as_ref()
        .map(|o| o.obs.clone())
        .unwrap_or_default();
    let scan_pool = WorkerPool::new_observed(num_threads, "scan", &obs_handle);
    let reduce_pool = WorkerPool::new_observed(num_threads, "reduce", &obs_handle);
    shared.pool_threads_spawned.store(
        scan_pool.threads_spawned() + reduce_pool.threads_spawned(),
        Ordering::Relaxed,
    );
    // One slot per scan worker: each worker's per-job accumulators persist
    // across every segment of a job's revolution, so there is no
    // merge-into-coordinator step at segment end.
    let slots: Vec<Mutex<Slot<J>>> = (0..num_threads).map(|_| Mutex::new(Vec::new())).collect();

    let num_segments = shared.cuts.len() - 1;
    let mut cursor = 0usize; // next segment to scan
    let mut active: Vec<ActiveJob<J>> = Vec::new();
    // Start of the previous segment scan, for the cadence histogram; reset
    // across idle periods so waiting for work never counts as a gap.
    let mut last_seg_start_us: Option<u64> = None;

    loop {
        // Admit newly submitted jobs at this segment boundary (the paper's
        // alignment: a job starts at the next segment to be processed).
        {
            let mut pending = shared.pending.lock();
            active.append(&mut pending);
            if active.is_empty() {
                if let Some(o) = &shared.obs {
                    o.active_jobs.set(0);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                last_seg_start_us = None;
                // Idle: park until a submission or shutdown.
                shared.wakeup.wait(&mut pending);
                active.append(&mut pending);
                continue;
            }
        }

        // One iteration of Algorithm 1: merged sub-job over the cursor's
        // segment for every active job.
        let seg_t0 = shared.obs.as_ref().map(|o| {
            let now = o.tracer().now_us();
            if let Some(prev) = last_seg_start_us {
                o.cadence.record(now.saturating_sub(prev));
            }
            last_seg_start_us = Some(now);
            // Admission: the job's revolution starts with this segment.
            for a in active.iter_mut().filter(|a| !a.admitted) {
                a.admitted = true;
                o.admission.record(now.saturating_sub(a.submitted_us));
                o.tracer().instant("admit", Ids::job(a.id).jobs(cursor as u64));
            }
            o.active_jobs.set(active.len() as i64);
            now
        });
        let (start, end) = (shared.cuts[cursor], shared.cuts[cursor + 1]);
        scan_segment(&shared, &active, &slots, start, end, &scan_pool);
        let seg_blocks = (end - start) as u64;
        let seg_bytes = shared.byte_cuts[end] - shared.byte_cuts[start];
        shared.blocks_scanned.fetch_add(seg_blocks, Ordering::Relaxed);
        shared.iterations.fetch_add(1, Ordering::Relaxed);
        if let (Some(o), Some(t0)) = (&shared.obs, seg_t0) {
            o.tracer()
                .span("segment", t0, Ids::seg(cursor as u64).jobs(active.len() as u64));
            o.seg_scan.record(o.tracer().now_us().saturating_sub(t0));
            o.segments.inc();
            o.blocks.add(seg_blocks);
            o.bytes.add(seg_bytes);
        }
        for a in &mut active {
            a.blocks_seen += seg_blocks;
            a.bytes_seen += seg_bytes;
        }
        cursor = (cursor + 1) % num_segments;

        // Jobs that completed a full revolution: hand their accumulated
        // state to the reduce pool and keep scanning without waiting.
        let mut i = 0;
        while i < active.len() {
            active[i].segments_remaining -= 1;
            if active[i].segments_remaining == 0 {
                let finished = active.swap_remove(i);
                finish_job(&slots, &reduce_pool, finished, shared.obs.clone());
            } else {
                i += 1;
            }
        }
    }
}

/// Scan one segment once, running every active job's map over each record
/// on the persistent scan pool. Jobs declaring
/// [`map_is_per_token`](MapReduceJob::map_is_per_token) share one
/// tokenization of each line.
fn scan_segment<J: MapReduceJob + 'static>(
    shared: &ServerShared<J>,
    active: &[ActiveJob<J>],
    slots: &[Mutex<Slot<J>>],
    start: usize,
    end: usize,
    pool: &WorkerPool,
) {
    if active.is_empty() || start == end {
        return;
    }
    let next = AtomicUsize::new(start);
    let store = &shared.store;
    // A one-block segment runs inline on the coordinator (fan_out 1 —
    // zero cross-thread handoff); wider segments fan out over the pool.
    let fan_out = pool.num_threads().min(end - start);
    let token_pos: Vec<usize> =
        (0..active.len()).filter(|&i| active[i].job.map_is_per_token()).collect();
    let line_pos: Vec<usize> =
        (0..active.len()).filter(|&i| !active[i].job.map_is_per_token()).collect();

    pool.broadcast(fan_out, &|wi| {
        let mut slot = slots[wi].lock();
        // Index of each active job's partial in this worker's slot,
        // creating partials for jobs this worker has not seen yet.
        let idxs: Vec<usize> = active
            .iter()
            .map(|a| {
                if let Some(p) = slot.iter().position(|(id, _)| *id == a.id) {
                    p
                } else {
                    slot.push((
                        a.id,
                        JobPartial {
                            emitted: 0,
                            acc: JobAcc::new(a.job.combine_is_fold()),
                        },
                    ));
                    slot.len() - 1
                }
            })
            .collect();
        loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            if idx >= end {
                break;
            }
            let block = store.block(idx);
            for line in block.lines() {
                if !token_pos.is_empty() {
                    // One tokenization pass shared by every token job.
                    for token in line.split_whitespace() {
                        for &pos in &token_pos {
                            let job = &*active[pos].job;
                            let JobPartial { emitted, acc } = &mut slot[idxs[pos]].1;
                            job.map_token(token, &mut |k, v| {
                                *emitted += 1;
                                acc.push(job, k, v);
                            });
                        }
                    }
                }
                for &pos in &line_pos {
                    let job = &*active[pos].job;
                    let JobPartial { emitted, acc } = &mut slot[idxs[pos]].1;
                    job.map(line, &mut |k, v| {
                        *emitted += 1;
                        acc.push(job, k, v);
                    });
                }
            }
        }
    });
}

/// Finalization context shared by one finished job's reduce-pool tasks.
struct FinishCtx<J: MapReduceJob> {
    job: Arc<J>,
    job_id: u64,
    submitted_us: u64,
    handle: Arc<HandleState<J::K, J::Out>>,
    state: Mutex<FinishState<J>>,
    remaining: AtomicUsize,
    stats: ScanStats,
    obs: Option<Arc<ServerObs>>,
}

struct FinishState<J: MapReduceJob> {
    sharded: bool,
    /// Per-worker accumulators, as collected by the coordinator.
    partials: Vec<JobAcc<J>>,
    /// Key-hash shards, built lazily by the first shard task to run.
    buckets: Vec<Option<JobAcc<J>>>,
    /// Reduced output of each shard.
    parts: Vec<Option<BTreeMap<J::K, J::Out>>>,
}

/// Collect the finished job's worker partials (cheap: map moves, no record
/// touches) and queue its combine+reduce on the reduce pool, sharded by
/// key hash. The coordinator returns to scanning immediately; the last
/// shard task to finish publishes the output and wakes the handle.
fn finish_job<J: MapReduceJob + 'static>(
    slots: &[Mutex<Slot<J>>],
    reduce_pool: &WorkerPool,
    job: ActiveJob<J>,
    obs: Option<Arc<ServerObs>>,
) {
    let mut partials: Vec<JobAcc<J>> = Vec::new();
    let mut map_output_records = 0u64;
    let mut distinct_fold_keys = 0u64;
    let mut folded = false;
    for slot in slots {
        let mut slot = slot.lock();
        if let Some(p) = slot.iter().position(|(id, _)| *id == job.id) {
            let (_, partial) = slot.swap_remove(p);
            map_output_records += partial.emitted;
            if let JobAcc::Fold(m) = &partial.acc {
                distinct_fold_keys += m.len() as u64;
                folded = true;
            }
            partials.push(partial.acc);
        }
    }
    if let Some(o) = &obs {
        o.map_records.add(map_output_records);
        if folded {
            // A fold combiner collapses every repeat of a key into the
            // worker's single accumulator, so hits are simply the emitted
            // records the accumulators absorbed: emitted − distinct keys.
            // Counted here, post hoc, for zero cost on the map hot path.
            o.fold_hits
                .add(map_output_records.saturating_sub(distinct_fold_keys));
        }
    }

    let nshards = reduce_pool.num_threads();
    let ctx = Arc::new(FinishCtx {
        job: job.job,
        job_id: job.id,
        submitted_us: job.submitted_us,
        handle: job.handle,
        state: Mutex::new(FinishState {
            sharded: false,
            partials,
            buckets: (0..nshards).map(|_| None).collect(),
            parts: (0..nshards).map(|_| None).collect(),
        }),
        remaining: AtomicUsize::new(nshards),
        stats: ScanStats {
            blocks_scanned: job.blocks_seen,
            bytes_scanned: job.bytes_seen,
            map_output_records,
            reduce_output_records: 0, // filled at publish
        },
        obs,
    });
    for s in 0..nshards {
        let ctx = Arc::clone(&ctx);
        reduce_pool.execute(move || run_finish_shard(ctx, s, nshards));
    }
}

fn run_finish_shard<J: MapReduceJob + 'static>(ctx: Arc<FinishCtx<J>>, s: usize, nshards: usize) {
    let shard_t0 = ctx.obs.as_ref().map(|o| o.tracer().now_us());
    let bucket = {
        let mut st = ctx.state.lock();
        if !st.sharded {
            // First shard task to run splits the accumulated state by key
            // hash — off the coordinator like everything else here.
            let partials = std::mem::take(&mut st.partials);
            let fold = ctx.job.combine_is_fold();
            let mut buckets: Vec<JobAcc<J>> = (0..nshards).map(|_| JobAcc::new(fold)).collect();
            for acc in partials {
                match acc {
                    JobAcc::Fold(map) => {
                        for (k, v) in map {
                            let b = (fxhash::hash64(&k) % nshards as u64) as usize;
                            // Fold-merges values of keys seen by several workers.
                            buckets[b].push(&*ctx.job, k, v);
                        }
                    }
                    JobAcc::Buf(map) => {
                        for (k, mut vs) in map {
                            let b = (fxhash::hash64(&k) % nshards as u64) as usize;
                            match &mut buckets[b] {
                                JobAcc::Buf(m) => m.entry(k).or_default().append(&mut vs),
                                JobAcc::Fold(_) => unreachable!("bucket kind matches job kind"),
                            }
                        }
                    }
                }
            }
            st.buckets = buckets.into_iter().map(Some).collect();
            st.sharded = true;
        }
        st.buckets[s].take()
    };

    // Reduce this shard outside the lock so shards run in parallel.
    let mut part = BTreeMap::new();
    if let Some(acc) = bucket {
        match acc {
            JobAcc::Fold(map) => {
                for (k, v) in map {
                    if let Some(o) = ctx.job.reduce(&k, std::slice::from_ref(&v)) {
                        part.insert(k, o);
                    }
                }
            }
            JobAcc::Buf(map) => {
                for (k, vs) in map {
                    let folded = ctx.job.combine(&k, vs);
                    if let Some(o) = ctx.job.reduce(&k, &folded) {
                        part.insert(k, o);
                    }
                }
            }
        }
    }
    ctx.state.lock().parts[s] = Some(part);
    if let (Some(o), Some(t0)) = (&ctx.obs, shard_t0) {
        o.tracer()
            .span("reduce_shard", t0, Ids::job(ctx.job_id).jobs(s as u64));
        o.reduce_shard.record(o.tracer().now_us().saturating_sub(t0));
    }

    if ctx.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last shard to finish merges and publishes.
        let parts = std::mem::take(&mut ctx.state.lock().parts);
        let mut records = BTreeMap::new();
        for p in parts {
            records.extend(p.expect("every shard stored its part"));
        }
        let mut stats = ctx.stats;
        stats.reduce_output_records = records.len() as u64;
        let output = JobOutput { records, stats };
        let mut guard = ctx.handle.done.lock();
        *guard = Some(output);
        ctx.handle.cv.notify_all();
        if let Some(o) = &ctx.obs {
            o.jobs_completed.inc();
            o.job_latency
                .record(o.tracer().now_us().saturating_sub(ctx.submitted_us));
            o.tracer().instant("job_done", Ids::job(ctx.job_id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_job, ExecConfig};
    use crate::types::test_jobs::PrefixCount;

    fn store() -> BlockStore {
        // Large enough that one revolution comfortably outlasts a burst of
        // submissions, so concurrency tests are not racy.
        let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(2000);
        BlockStore::from_text(&text, 2048)
    }

    #[test]
    fn single_job_matches_run_job() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 2, 3);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait();
        let solo = run_job(&PrefixCount { prefix: "".into() }, &s, &ExecConfig::default());
        assert_eq!(out.records, solo.records);
        assert_eq!(out.stats.map_output_records, solo.stats.map_output_records);
        server.shutdown();
    }

    #[test]
    fn concurrent_jobs_share_the_scan() {
        let s = store();
        let n_blocks = s.num_blocks() as u64;
        let server = SharedScanServer::new(s.clone(), 1, 4);
        // Submit several jobs quickly: they should ride the same revolution.
        let handles: Vec<_> = ["a", "b", "g", "d", ""]
            .iter()
            .map(|p| server.submit(PrefixCount { prefix: p.to_string() }))
            .collect();
        for (p, h) in ["a", "b", "g", "d", ""].iter().zip(handles) {
            let out = h.wait();
            let solo = run_job(
                &PrefixCount { prefix: p.to_string() },
                &s,
                &ExecConfig::default(),
            );
            assert_eq!(out.records, solo.records, "prefix {p:?}");
        }
        let scanned = server.blocks_scanned();
        // Five jobs, but far fewer than five full scans (they overlap).
        assert!(
            scanned < 3 * n_blocks,
            "expected shared scanning: {scanned} block scans for 5 jobs over {n_blocks} blocks"
        );
        assert!(scanned >= n_blocks);
        server.shutdown();
    }

    #[test]
    fn late_job_joins_mid_scan_and_wraps() {
        let s = store();
        let server = SharedScanServer::new(s.clone(), 1, 2);
        let first = server.submit(PrefixCount { prefix: "".into() });
        // Give the scan a moment to advance before the second job arrives.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let second = server.submit(PrefixCount { prefix: "ga".into() });
        let out1 = first.wait();
        let out2 = second.wait();
        let solo2 = run_job(
            &PrefixCount { prefix: "ga".into() },
            &s,
            &ExecConfig::default(),
        );
        // The wrapped job still sees every block exactly once.
        assert_eq!(out2.records, solo2.records);
        assert!(out1.records.len() >= out2.records.len());
        server.shutdown();
    }

    #[test]
    fn submissions_from_many_threads() {
        let s = store();
        let server = Arc::new(SharedScanServer::new(s.clone(), 2, 2));
        let mut joins = Vec::new();
        for i in 0..6 {
            let server = Arc::clone(&server);
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                let prefix = ["a", "b", "g"][i % 3].to_string();
                let h = server.submit(PrefixCount { prefix: prefix.clone() });
                let out = h.wait();
                let solo = run_job(&PrefixCount { prefix }, &s, &ExecConfig::default());
                assert_eq!(out.records, solo.records);
            }));
        }
        for j in joins {
            j.join().expect("submitter thread panicked");
        }
        Arc::try_unwrap(server)
            .unwrap_or_else(|_| panic!("all submitters joined"))
            .shutdown();
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let s = store();
        let server = SharedScanServer::new(s, 1, 2);
        let h = server.submit(PrefixCount { prefix: "".into() });
        // Eventually completes; poll until it does.
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(out) = h.try_take() {
                got = Some(out);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(got.is_some(), "job should complete");
        server.shutdown();
    }

    #[test]
    fn rapid_create_shutdown_cycles_do_not_hang() {
        // Regression: shutdown used to set the flag and notify without
        // holding the pending lock, racing the coordinator's
        // check-then-wait and losing the wakeup (observed as a hang under
        // benchmark repetition).
        let s = BlockStore::from_text("a b\n", 16);
        for _ in 0..300 {
            let server: SharedScanServer<PrefixCount> = SharedScanServer::new(s.clone(), 1, 2);
            server.shutdown();
        }
    }

    #[test]
    fn shutdown_with_no_jobs_is_clean() {
        let server: SharedScanServer<PrefixCount> = SharedScanServer::new(store(), 4, 2);
        assert_eq!(server.blocks_scanned(), 0);
        server.shutdown();
    }

    #[test]
    fn stats_report_the_job_revolution() {
        let s = store();
        let total_bytes = s.total_bytes() as u64;
        let total_blocks = s.num_blocks() as u64;
        let server = SharedScanServer::new(s, 3, 2);
        let h = server.submit(PrefixCount { prefix: "".into() });
        let out = h.wait();
        // One full revolution covers exactly the store, summed per segment.
        assert_eq!(out.stats.bytes_scanned, total_bytes);
        assert_eq!(out.stats.blocks_scanned, total_blocks);
        server.shutdown();
    }
}
