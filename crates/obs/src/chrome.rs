//! Chrome trace-event export: the shared schema engine traces and
//! simulator traces both serialize through.
//!
//! The output is the Chrome trace-event **JSON array format** written one
//! event per line — streaming-friendly like JSONL, yet strictly valid JSON
//! that loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`:
//!
//! ```text
//! [
//! {"name":"process_name","ph":"M","pid":1,"tid":0,"ts":0.0,"args":{"name":"s3-engine"}},
//! {"name":"segment","ph":"X","pid":1,"tid":1,"ts":120.0,"dur":835.0,"args":{"seg":4}},
//! {"name":"submit","ph":"i","s":"t","pid":1,"tid":2,"ts":130.0,"args":{"job":0}}
//! ]
//! ```
//!
//! [`validate_chrome_trace`] is the schema check CI's trace-smoke job and
//! the tests run over emitted files.

use crate::trace::{Event, Ids, Phase, NO_ID};
use serde_json::Value;
use std::io::Write;

/// One event in Chrome trace-event form, ready to serialize.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Display name.
    pub name: String,
    /// Category (used by Perfetto's filter box).
    pub cat: String,
    /// Phase: `'X'` complete span, `'B'`/`'E'` begin/end, `'i'` instant,
    /// `'M'` metadata, `'C'` counter.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (`Some` only for `'X'`).
    pub dur: Option<f64>,
    /// Process id (one logical process per exporter).
    pub pid: u64,
    /// Thread/track id.
    pub tid: u64,
    /// Free-form arguments shown in the Perfetto detail pane.
    pub args: Vec<(String, Value)>,
}

impl ChromeEvent {
    /// A metadata event naming the process `pid`.
    pub fn process_name(pid: u64, name: &str) -> Self {
        ChromeEvent::metadata(pid, 0, "process_name", name)
    }

    /// A metadata event naming thread `tid` of process `pid`.
    pub fn thread_name(pid: u64, tid: u64, name: &str) -> Self {
        ChromeEvent::metadata(pid, tid, "thread_name", name)
    }

    fn metadata(pid: u64, tid: u64, kind: &str, name: &str) -> Self {
        ChromeEvent {
            name: kind.to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts: 0.0,
            dur: None,
            pid,
            tid,
            args: vec![("name".to_string(), Value::String(name.to_string()))],
        }
    }

    fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("cat".to_string(), Value::String(self.cat.clone())),
            ("ph".to_string(), Value::String(self.ph.to_string())),
            ("ts".to_string(), Value::from(self.ts)),
            ("pid".to_string(), Value::from(self.pid)),
            ("tid".to_string(), Value::from(self.tid)),
        ];
        if let Some(dur) = self.dur {
            fields.push(("dur".to_string(), Value::from(dur)));
        }
        if self.ph == 'i' {
            // Instant scope: thread-level keeps the marker on its track.
            fields.push(("s".to_string(), Value::String("t".to_string())));
        }
        if !self.args.is_empty() {
            fields.push(("args".to_string(), Value::Object(self.args.clone())));
        }
        Value::Object(fields)
    }
}

/// Convert one engine [`Event`] into the shared schema. `pid` labels the
/// exporting component (servers use 1).
pub fn engine_event_to_chrome(ev: &Event, pid: u64, cat: &str) -> ChromeEvent {
    let mut args: Vec<(String, Value)> = Vec::new();
    let Ids { job, seg, shard, n } = ev.ids;
    if job != NO_ID {
        args.push(("job".to_string(), Value::from(job)));
    }
    if seg != NO_ID {
        args.push(("seg".to_string(), Value::from(seg)));
    }
    if shard != NO_ID {
        args.push(("shard".to_string(), Value::from(shard)));
    }
    if n != NO_ID {
        args.push(("n".to_string(), Value::from(n)));
    }
    ChromeEvent {
        name: ev.name.to_string(),
        cat: cat.to_string(),
        ph: match ev.ph {
            Phase::Span => 'X',
            Phase::Instant => 'i',
        },
        ts: ev.ts_us as f64,
        dur: match ev.ph {
            Phase::Span => Some(ev.dur_us as f64),
            Phase::Instant => None,
        },
        pid,
        tid: ev.tid,
        args,
    }
}

/// Write `events` as a Chrome trace-event JSON array, one event per line.
///
/// # Errors
/// Propagates writer errors.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[ChromeEvent]) -> std::io::Result<()> {
    writeln!(w, "[")?;
    for (i, ev) in events.iter().enumerate() {
        let line = serde_json::to_string(&ev.to_json()).expect("events serialize");
        let sep = if i + 1 == events.len() { "" } else { "," };
        writeln!(w, "{line}{sep}")?;
    }
    writeln!(w, "]")?;
    Ok(())
}

fn is_number(v: &Value) -> bool {
    matches!(v, Value::Number(_))
}

/// Validate `text` against the Chrome trace-event schema: a JSON array
/// whose entries carry `name`, `ph` (a known phase), numeric `ts`, `pid`,
/// and `tid`, with `'X'` events also carrying a numeric `dur`.
///
/// Returns the number of events.
///
/// # Errors
/// Returns a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let arr = v.as_array().ok_or("top level must be a JSON array")?;
    for (i, ev) in arr.iter().enumerate() {
        if !matches!(ev, Value::Object(_)) {
            return Err(format!("event {i} is not an object"));
        }
        for field in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event {i} is missing {field:?}"));
            }
        }
        let ph = ev["ph"]
            .as_str()
            .ok_or(format!("event {i}: ph not a string"))?;
        if !matches!(ph, "X" | "B" | "E" | "i" | "I" | "M" | "C") {
            return Err(format!("event {i}: unknown phase {ph:?}"));
        }
        if !is_number(&ev["ts"]) {
            return Err(format!("event {i}: ts must be a number"));
        }
        if ph == "X" && !ev.get("dur").is_some_and(is_number) {
            return Err(format!("event {i}: X event needs a numeric dur"));
        }
        if !is_number(&ev["pid"]) || !is_number(&ev["tid"]) {
            return Err(format!("event {i}: pid/tid must be numbers"));
        }
    }
    Ok(arr.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ChromeEvent> {
        let ev = Event {
            ts_us: 10,
            dur_us: 25,
            name: "segment",
            ph: Phase::Span,
            tid: 3,
            ids: Ids::seg(7).jobs(2),
        };
        let inst = Event {
            ts_us: 12,
            dur_us: 0,
            name: "submit",
            ph: Phase::Instant,
            tid: 1,
            ids: Ids::job(0),
        };
        vec![
            ChromeEvent::process_name(1, "s3-engine"),
            engine_event_to_chrome(&ev, 1, "engine"),
            engine_event_to_chrome(&inst, 1, "engine"),
        ]
    }

    #[test]
    fn writer_output_validates() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(validate_chrome_trace(&text).unwrap(), 3);
        // One event per line, bracketed.
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        assert_eq!(
            validate_chrome_trace(std::str::from_utf8(&buf).unwrap()).unwrap(),
            0
        );
    }

    #[test]
    fn span_conversion_carries_ids_and_duration() {
        let evs = sample_events();
        let seg = &evs[1];
        assert_eq!(seg.ph, 'X');
        assert_eq!(seg.dur, Some(25.0));
        let json = seg.to_json();
        assert_eq!(json["args"]["seg"].as_u64(), Some(7));
        assert_eq!(json["args"]["n"].as_u64(), Some(2));
        let sub = evs[2].to_json();
        assert_eq!(sub["args"]["job"].as_u64(), Some(0));
        assert!(sub["args"].get("seg").is_none());
        assert_eq!(sub["s"].as_str(), Some("t"));
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"[{"name":"x"}]"#).is_err());
        assert!(
            validate_chrome_trace(r#"[{"name":"x","ph":"Z","ts":0,"pid":0,"tid":0}]"#).is_err()
        );
        assert!(
            validate_chrome_trace(r#"[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]"#).is_err(),
            "X without dur must fail"
        );
        assert_eq!(
            validate_chrome_trace(r#"[{"name":"x","ph":"i","ts":0,"pid":0,"tid":0}]"#).unwrap(),
            1
        );
    }
}
