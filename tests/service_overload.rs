//! Multi-tenant `ScanService` under overload, through the public API:
//! typed load-shedding, QoS-class admission order, deadline expiry,
//! shutdown draining, and trace-level admission invariants
//! ([`check_engine_events`](s3_mapreduce::check_engine_events)) on a
//! fully observed service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use s3_engine::{
    FileSpec, JobError, MapReduceJob, Obs, QosClass, QosConfig, RejectReason, RetryPolicy,
    ScanService, ServerConfig, ServiceConfig, WaitTimeout,
};
use s3_engine::BlockStore;
use s3_mapreduce::check_engine_events;
use s3_workloads::ClassMix;

/// A word counter whose map can be held at a gate: while the gate is
/// closed the first mapped line spins, pinning the job (and the width
/// slot it occupies) in flight so queues can be observed deterministically.
struct HoldableCount {
    gate: Option<Arc<AtomicBool>>,
}

impl HoldableCount {
    fn free() -> Self {
        HoldableCount { gate: None }
    }

    fn held(gate: &Arc<AtomicBool>) -> Self {
        HoldableCount { gate: Some(Arc::clone(gate)) }
    }
}

impl MapReduceJob for HoldableCount {
    type K = String;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        if let Some(g) = &self.gate {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        for w in line.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }

    fn reduce(&self, _key: &String, values: &[i64]) -> Option<i64> {
        Some(values.iter().sum())
    }
}

fn corpus(words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        s.push_str(&format!("w{:03}", i % 7));
        s.push(if i % 8 == 7 { '\n' } else { ' ' });
    }
    s
}

fn service_with(qos: QosConfig) -> ScanService<HoldableCount> {
    let files = ["logs", "events"]
        .iter()
        .map(|name| {
            let store = BlockStore::from_text(&corpus(256), 256);
            let server = ServerConfig::new(2, 1);
            FileSpec { name: (*name).to_string(), store, server }
        })
        .collect();
    ScanService::new(files, ServiceConfig { qos, obs: Obs::off() })
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Opens the gate when dropped, so a failed assertion unwinds cleanly:
/// without this, dropping the service joins threads stuck behind the
/// gate and the panic turns into a hang.
struct OpenOnDrop(Arc<AtomicBool>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

#[test]
fn sheds_are_typed_with_reason_and_class() {
    let svc = service_with(
        QosConfig {
            queue_cap: 1,
            max_inflight: 1,
            max_queued_total: 2,
            ..QosConfig::default()
        },
    );
    let logs = svc.file_id("logs").expect("registered");
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));

    // Fill the single width slot, then the Normal queue slot.
    let pinned = svc.submit(logs, QosClass::Normal, HoldableCount::held(&gate)).unwrap();
    wait_until("the pinned job to occupy the width", || svc.inflight(logs) == 1);
    let queued = svc.submit(logs, QosClass::Normal, HoldableCount::free()).unwrap();

    // The next submission of the same class sheds synchronously, and the
    // error names both the reason and the class the caller used.
    let err = svc.submit(logs, QosClass::Normal, HoldableCount::free()).unwrap_err();
    assert_eq!(
        err,
        JobError::Rejected { reason: RejectReason::QueueFull, class: QosClass::Normal }
    );

    // High still has queue room, so it is accepted — and fills the
    // service-wide bound (2 queued), which is checked before any
    // per-class cap: the next High sheds as Overloaded, not QueueFull.
    let queued_high = svc.submit(logs, QosClass::High, HoldableCount::free()).unwrap();
    let err = svc.submit(logs, QosClass::High, HoldableCount::free()).unwrap_err();
    assert_eq!(
        err,
        JobError::Rejected { reason: RejectReason::Overloaded, class: QosClass::High }
    );

    // An unregistered name sheds with UnknownFile without touching queues.
    let err = svc
        .submit_named("no-such-file", QosClass::Low, HoldableCount::free())
        .unwrap_err();
    assert_eq!(
        err,
        JobError::Rejected { reason: RejectReason::UnknownFile, class: QosClass::Low }
    );

    gate.store(true, Ordering::SeqCst);
    pinned.wait().expect("pinned job completes");
    queued_high.wait().expect("queued high job admits and completes");
    queued.wait().expect("queued normal job admits and completes");
    let stats = svc.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 3);
    assert!(stats.identity_holds(), "{stats:?}");
    svc.shutdown();
}

#[test]
fn high_jumps_the_queue_while_low_defers_at_the_width_cap() {
    let svc = service_with(
        QosConfig {
            queue_cap: 4,
            max_inflight: 2,
            low_priority_width_cap: 1,
            ..QosConfig::default()
        },
    );
    let logs = svc.file_id("logs").expect("registered");
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));

    let pinned = svc.submit(logs, QosClass::Normal, HoldableCount::held(&gate)).unwrap();
    wait_until("the pinned job to occupy the width", || svc.inflight(logs) == 1);

    // Width (1) is at the low cap: Low waits, and is counted deferred.
    let low = svc.submit(logs, QosClass::Low, HoldableCount::free()).unwrap();
    wait_until("the low job to be width-cap deferred", || svc.stats().deferred >= 1);
    assert_eq!(low.wait_timeout(Duration::from_millis(20)), Err(WaitTimeout));

    // High submitted later is admitted into the remaining slot first.
    let high = svc.submit(logs, QosClass::High, HoldableCount::free()).unwrap();
    wait_until("the high job to be admitted", || svc.inflight(logs) == 2);
    assert_eq!(svc.queued(), 1, "the low job is still queued behind the cap");

    gate.store(true, Ordering::SeqCst);
    pinned.wait().expect("pinned completes");
    high.wait_timeout(Duration::from_secs(10))
        .expect("high resolves")
        .expect("high completes");
    low.wait_timeout(Duration::from_secs(10))
        .expect("low resolves once width drops below the cap")
        .expect("low completes");
    let stats = svc.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.deferred, 1, "the deferral is counted once, not per poll");
    assert!(stats.identity_holds(), "{stats:?}");
    svc.shutdown();
}

#[test]
fn a_queued_deadline_expires_and_is_counted_exactly_once() {
    let svc = service_with(
        QosConfig { max_inflight: 1, ..QosConfig::default() });
    let logs = svc.file_id("logs").expect("registered");
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));

    let pinned = svc.submit(logs, QosClass::High, HoldableCount::held(&gate)).unwrap();
    wait_until("the pinned job to occupy the width", || svc.inflight(logs) == 1);

    // Queued behind a pinned revolution with a deadline far shorter than
    // the pin: the dispatcher expires it in the queue, server untouched.
    let doomed = svc
        .submit_with_deadline(
            logs,
            QosClass::Normal,
            HoldableCount::free(),
            Some(Duration::from_millis(5)),
        )
        .unwrap();
    assert_eq!(
        doomed.wait_timeout(Duration::from_secs(10)).expect("expiry resolves the handle"),
        Err(JobError::DeadlineExpired)
    );
    // The expiry is counted exactly once, and stays counted once even
    // after the pinned revolution later drains normally.
    assert_eq!(svc.stats().expired, 1);

    gate.store(true, Ordering::SeqCst);
    pinned.wait().expect("pinned completes");
    let stats = svc.stats();
    assert_eq!(stats.expired, 1);
    assert!(stats.identity_holds(), "{stats:?}");
    svc.shutdown();
}

#[test]
fn a_mixed_burst_with_retries_accounts_exactly_and_never_hangs() {
    // Fully observed: the service emits svc_* admission events and each
    // tenant emits engine events; both traces must pass the checker.
    // Obs handles are Arc-backed, so the clones kept here keep reading
    // after the service is consumed by shutdown.
    let svc_obs = Obs::new();
    let mut tenant_obs = Vec::new();
    let files: Vec<FileSpec> = ["logs", "events"]
        .iter()
        .map(|name| {
            let mut server = ServerConfig::new(2, 1);
            server.obs = Obs::new();
            tenant_obs.push(server.obs.clone());
            FileSpec {
                name: (*name).to_string(),
                store: BlockStore::from_text(&corpus(256), 256),
                server,
            }
        })
        .collect();
    let svc = ScanService::new(
        files,
        ServiceConfig {
            qos: QosConfig {
                queue_cap: 2,
                max_inflight: 2,
                low_priority_width_cap: 1,
                max_queued_total: 4,
                ..QosConfig::default()
            },
            obs: svc_obs.clone(),
        },
    );
    let files = [
        svc.file_id("logs").expect("registered"),
        svc.file_id("events").expect("registered"),
    ];
    let retry = RetryPolicy {
        max_retries: 2,
        base: Duration::from_micros(300),
        ..RetryPolicy::default()
    };
    let classes = ClassMix::default().assign(30, 9);
    let mut handles = Vec::new();
    let mut client_rejected = 0u64;
    let mut attempts = 0u64;
    for (i, &class) in classes.iter().enumerate() {
        let file = files[i % files.len()];
        // A third of the burst carries deadlines tight enough that some
        // expire while queued under the overload.
        let deadline = (i % 3 == 0).then(|| Duration::from_micros(400 + 300 * i as u64));
        let res = retry.run(i as u64, |_| {
            attempts += 1;
            svc.submit_with_deadline(file, class, HoldableCount::free(), deadline)
        });
        match res {
            Ok(h) => handles.push(h),
            Err(JobError::Rejected { .. }) => client_rejected += 1,
            Err(e) => panic!("burst submit failed with non-rejection error {e}"),
        }
    }

    // Every accepted handle must resolve within the bound — a hang here
    // is the failure this suite exists to catch.
    let mut client_done = 0u64;
    let mut client_expired = 0u64;
    for h in handles {
        match h.wait_timeout(Duration::from_secs(30)).expect("no handle hangs") {
            Ok(_) => client_done += 1,
            Err(JobError::DeadlineExpired) => client_expired += 1,
            Err(e) => panic!("burst job failed: {e}"),
        }
    }

    let stats = svc.stats();
    assert!(stats.identity_holds(), "{stats:?}");
    // Every retry resubmits, so the service counts attempts, not jobs.
    assert_eq!(stats.submitted, attempts);
    assert_eq!(stats.completed, client_done);
    assert_eq!(stats.expired, client_expired);
    // Client-side rejections count every shed *submission*, the service
    // counts every shed *attempt* (retries resubmit), so service-side
    // rejections can only be larger.
    assert!(
        stats.rejected >= client_rejected,
        "service saw {} rejects, client kept {client_rejected}",
        stats.rejected
    );

    svc.shutdown();

    // Drain traces through the engine-event checker: admission outcomes,
    // typed sheds, per-queue FIFO on the service trace; scheduling
    // invariants on each tenant's trace.
    let svc_core = svc_obs.core().expect("service observed");
    assert_eq!(svc_core.tracer.dropped(), 0, "service trace dropped events");
    let violations = check_engine_events(&svc_core.tracer.drain());
    assert!(violations.is_empty(), "service trace: {violations:?}");
    for obs in tenant_obs {
        let core = obs.core().expect("tenant observed");
        assert_eq!(core.tracer.dropped(), 0, "tenant trace dropped events");
        let violations = check_engine_events(&core.tracer.drain());
        assert!(violations.is_empty(), "tenant trace: {violations:?}");
    }
}
