//! Property-based tests for the engine model: batch lifecycle and cost
//! monotonicity.

use proptest::prelude::*;
use s3_cluster::{ClusterTopology, NetworkModel, NodeId, NodeSpec};
use s3_dfs::{Dfs, RoundRobinPlacement, MB};
use s3_mapreduce::job::{requests_from_arrivals, JobProfile, JobTable};
use s3_mapreduce::task::Locality;
use s3_mapreduce::{Batch, BatchKey, CostModel};
use s3_sim::SimTime;
use std::sync::Arc;

fn profile(map_cpu: f64, out_ratio: f64, reduces: u32) -> Arc<JobProfile> {
    Arc::new(JobProfile {
        name: "p".into(),
        map_cpu_s_per_mb: map_cpu,
        map_output_ratio: out_ratio,
        map_output_records_per_mb: 1000.0,
        reduce_cpu_s_per_mb: 0.002,
        reduce_output_ratio: 0.01,
        num_reduce_tasks: reduces,
    })
}

fn world(blocks: u64, jobs: usize, reduces: u32) -> (ClusterTopology, Dfs, JobTable, Vec<s3_dfs::BlockId>) {
    let cluster = ClusterTopology::paper_cluster();
    let mut dfs = Dfs::new();
    let file = dfs
        .create_file(
            &cluster,
            "f",
            blocks * 64 * MB,
            64 * MB,
            1,
            &mut RoundRobinPlacement::default(),
        )
        .unwrap();
    let p = profile(0.001, 0.01, reduces);
    let mut table = JobTable::new();
    for r in requests_from_arrivals(&p, file, &vec![0.0; jobs]) {
        table.arrive(r);
    }
    let block_ids = dfs.file(file).blocks.clone();
    (cluster, dfs, table, block_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A batch hands out each block exactly once regardless of which nodes
    /// ask in which order, then completes after exactly
    /// total_maps + num_partitions completions.
    #[test]
    fn batch_hands_out_each_block_once(
        blocks in 1u64..200,
        jobs in 1usize..5,
        reduces in 0u32..40,
        ask_order in prop::collection::vec(0u32..40, 1..2000),
    ) {
        let (cluster, dfs, table, block_ids) = world(blocks, jobs, reduces);
        let job_ids: Vec<_> = table.arrived().iter().map(|r| r.id).collect();
        let mut batch = Batch::new(
            BatchKey(0), job_ids, &block_ids, &table, &dfs, SimTime::ZERO, 40,
        );

        let mut handed = Vec::new();
        let mut asks = ask_order.iter().cycle();
        // Keep asking until exhausted; bound iterations defensively.
        for _ in 0..(blocks as usize * 50 + ask_order.len()) {
            if batch.maps_exhausted() {
                break;
            }
            let node = NodeId(*asks.next().unwrap());
            if let Some(spec) = batch.next_map_for(node, SimTime::ZERO, &dfs, &cluster) {
                handed.push(spec.block);
            }
        }
        prop_assert!(batch.maps_exhausted(), "all maps must eventually hand out");
        prop_assert_eq!(handed.len() as u64, blocks);
        let mut sorted: Vec<u32> = handed.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, blocks, "no block handed twice");

        // Complete all maps, then all reduces.
        for _ in 0..blocks {
            batch.on_map_done();
        }
        prop_assert!(batch.maps_complete());
        let mut reduce_count = 0;
        while let Some(spec) = batch.next_reduce(SimTime::ZERO) {
            prop_assert!(spec.partition < reduces.max(1) || reduces == 0);
            reduce_count += 1;
        }
        prop_assert_eq!(reduce_count, reduces);
        for i in 0..reduces {
            let done = batch.on_reduce_done();
            prop_assert_eq!(done, i + 1 == reduces);
        }
        prop_assert!(batch.is_complete());
    }

    /// Map task cost is monotone in block size, merged-job count, and
    /// locality distance.
    #[test]
    fn map_cost_is_monotone(
        block_mb in 1.0f64..512.0,
        extra_mb in 0.1f64..256.0,
        n in 1usize..10,
    ) {
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = profile(0.001, 0.01, 30);
        let profs: Vec<&JobProfile> = std::iter::repeat_n(&*p, n).collect();
        let more_profs: Vec<&JobProfile> = std::iter::repeat_n(&*p, n + 1).collect();

        let base = cm.map_task_secs(block_mb, Locality::NodeLocal, &profs, &node, &net);
        let bigger = cm.map_task_secs(block_mb + extra_mb, Locality::NodeLocal, &profs, &node, &net);
        prop_assert!(bigger > base, "bigger block must cost more");

        let merged = cm.map_task_secs(block_mb, Locality::NodeLocal, &more_profs, &node, &net);
        prop_assert!(merged > base, "more jobs must cost more");
        // ...but far less than a second scan.
        let two_scans = 2.0 * base;
        prop_assert!(merged < two_scans, "sharing must beat rescanning");

        let rack = cm.map_task_secs(block_mb, Locality::RackLocal, &profs, &node, &net);
        let off = cm.map_task_secs(block_mb, Locality::OffRack, &profs, &node, &net);
        prop_assert!(base <= rack && rack <= off);
    }

    /// Reduce cost is monotone in shuffle volume and never below startup.
    #[test]
    fn reduce_cost_is_monotone(mb in 0.0f64..2000.0, extra in 0.1f64..500.0, frac in 0.0f64..1.0) {
        let cm = CostModel::deterministic();
        let node = NodeSpec::default();
        let net = NetworkModel::one_gbps();
        let p = profile(0.001, 0.01, 30);
        let a = cm.reduce_task_secs(&[mb], &[&p], frac, &node, &net);
        let b = cm.reduce_task_secs(&[mb + extra], &[&p], frac, &node, &net);
        prop_assert!(b > a);
        prop_assert!(a >= cm.reduce_task_startup_s);
    }

    /// Submission overhead is affine in task count.
    #[test]
    fn submit_overhead_is_affine(a in 0usize..10_000, b in 0usize..10_000) {
        let cm = CostModel::default();
        let f = |n: usize| cm.submit_overhead_secs(n);
        prop_assert!((f(a + b) - (f(a) + f(b) - f(0))).abs() < 1e-9);
        prop_assert!(f(a) >= cm.job_submit_overhead_s);
    }
}
