//! A persistent worker pool: threads are spawned **once** and fed work
//! through a queue, so thread creation is O(pools), never O(work items).
//!
//! This replaces the previous engine hot path, which ran
//! `crossbeam::scope` — spawning and joining `num_threads` OS threads —
//! on *every* segment iteration of the shared scan. With one-block
//! segments that meant thousands of thread creations per revolution,
//! a fixed cost that had nothing to do with scanning and capped how small
//! (and thus how responsive) segments could be.
//!
//! Two submission modes:
//!
//! - [`WorkerPool::broadcast`] — run a closure as `fan_out` parallel tasks
//!   that may **borrow from the caller's stack**, blocking until all
//!   complete (the replacement for `crossbeam::scope` at each phase).
//!   A `fan_out` of 1 runs inline on the caller — a one-block segment pays
//!   zero cross-thread handoff.
//! - [`WorkerPool::execute`] — fire-and-forget an owned (`'static`) task;
//!   used to move job finalization (combine + reduce) off the scan
//!   coordinator. Dropping the pool **drains** queued tasks before joining
//!   the workers, so detached work is never lost on shutdown.

use parking_lot::{Condvar, Mutex};
use s3_obs::{Counter, Gauge, Obs};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// Pre-resolved instruments of an observed pool (`pool.<name>.*`): the
/// queued-task gauge and the busy-time counter the `s3trace` summary
/// derives utilization from. Resolved once at pool construction; the
/// worker hot path only touches the `Arc`s.
struct PoolObs {
    queue_depth: Arc<Gauge>,
    busy_us: Arc<Counter>,
    tasks: Arc<Counter>,
    tasks_panicked: Arc<Counter>,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    /// Workers park here waiting for tasks.
    work_cv: Condvar,
    /// Tasks executed to completion (instrumentation).
    executed: AtomicU64,
    /// Detached tasks that panicked (broadcast panics re-raise instead).
    panicked: AtomicU64,
    /// Telemetry, if the pool was built with [`WorkerPool::new_observed`].
    obs: Option<PoolObs>,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Threads this pool has ever created (== `num_threads`; the point is
    /// that it never grows with the amount of work submitted).
    spawned: u64,
}

impl WorkerPool {
    /// Spawn `num_threads` workers, once, for the lifetime of the pool.
    ///
    /// # Panics
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        WorkerPool::new_observed(num_threads, "worker", &Obs::off())
    }

    /// Spawn an **observed** pool: when `obs` is on, the pool registers
    /// `pool.<name>.queue_depth` (tasks enqueued but not yet running),
    /// `pool.<name>.busy_us` (cumulative worker time spent inside tasks;
    /// utilization = busy_us / (wall × workers)), `pool.<name>.tasks`
    /// (tasks run), and `pool.<name>.tasks_panicked` (detached tasks whose
    /// panic the worker loop swallowed — the metrics-registry view of
    /// [`WorkerPool::tasks_panicked`]). Inline `broadcast(1, …)` work runs
    /// on the caller and is deliberately **not** counted as worker busy
    /// time.
    ///
    /// # Panics
    /// Panics if `num_threads` is zero.
    pub fn new_observed(num_threads: usize, name: &str, obs: &Obs) -> Self {
        assert!(num_threads > 0, "pool needs at least one worker");
        let pool_obs = obs.core().map(|core| PoolObs {
            queue_depth: core.metrics.gauge(&format!("pool.{name}.queue_depth")),
            busy_us: core.metrics.counter(&format!("pool.{name}.busy_us")),
            tasks: core.metrics.counter(&format!("pool.{name}.tasks")),
            tasks_panicked: core.metrics.counter(&format!("pool.{name}.tasks_panicked")),
        });
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            obs: pool_obs,
        });
        let workers = (0..num_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("s3-pool-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning a pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            spawned: num_threads as u64,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Threads this pool has spawned over its whole lifetime. Always equals
    /// `num_threads()`: the instrumentation tests assert thread creation is
    /// O(pools), not O(segment iterations or jobs).
    pub fn threads_spawned(&self) -> u64 {
        self.spawned
    }

    /// Tasks executed to completion so far.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Detached tasks that panicked (their panics are swallowed by the
    /// worker loop so the pool survives; broadcast panics re-raise on the
    /// caller instead).
    pub fn tasks_panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Fire-and-forget an owned task. Queued tasks are drained (run to
    /// completion) before `Drop` joins the workers.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        if let Some(obs) = &self.shared.obs {
            obs.queue_depth.add(1);
        }
        let mut q = self.shared.queue.lock();
        q.tasks.push_back(Box::new(task));
        drop(q);
        self.shared.work_cv.notify_one();
    }

    /// Run `f(0)`, `f(1)`, …, `f(fan_out - 1)` as parallel tasks and block
    /// until all complete, returning the results in index order. The
    /// closure may borrow from the caller's stack: completion is awaited
    /// before returning, so borrows outlive every task.
    ///
    /// `fan_out == 0` returns an empty vector without touching the pool;
    /// `fan_out == 1` runs inline on the calling thread (no handoff).
    /// If any task panics, the panic is re-raised here after all tasks
    /// finish. Must not be called from inside a pool task of the same pool
    /// (the inner wait could starve the outer task's worker).
    pub fn broadcast<'env, R, F>(&self, fan_out: usize, f: &F) -> Vec<R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Sync + 'env,
    {
        if fan_out == 0 {
            return Vec::new();
        }
        if fan_out == 1 {
            return vec![f(0)];
        }

        struct Latch {
            remaining: Mutex<usize>,
            done_cv: Condvar,
        }
        let latch = Arc::new(Latch {
            remaining: Mutex::new(fan_out),
            done_cv: Condvar::new(),
        });
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..fan_out).map(|_| None).collect());
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        {
            let results = &results;
            let panic_payload = &panic_payload;
            if let Some(obs) = &self.shared.obs {
                obs.queue_depth.add(fan_out as i64);
            }
            let mut q = self.shared.queue.lock();
            for i in 0..fan_out {
                let latch = Arc::clone(&latch);
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    match catch_unwind(AssertUnwindSafe(|| f(i))) {
                        Ok(r) => results.lock()[i] = Some(r),
                        Err(p) => *panic_payload.lock() = Some(p),
                    }
                    let mut remaining = latch.remaining.lock();
                    *remaining -= 1;
                    if *remaining == 0 {
                        latch.done_cv.notify_all();
                    }
                });
                // SAFETY: only the lifetime is erased (`Box<dyn FnOnce +
                // Send + '_>` → `+ 'static`; identical layout). The task
                // borrows `f`, `results`, and `panic_payload`, all of which
                // outlive it: this function does not return until the latch
                // records every task's completion (even on panic, via
                // catch_unwind above), so no borrow dangles while a task
                // can run.
                let task: Task = unsafe { std::mem::transmute(task) };
                q.tasks.push_back(task);
            }
            drop(q);
            self.shared.work_cv.notify_all();
        }

        let mut remaining = latch.remaining.lock();
        while *remaining > 0 {
            latch.done_cv.wait(&mut remaining);
        }
        drop(remaining);

        if let Some(p) = panic_payload.into_inner() {
            resume_unwind(p);
        }
        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every broadcast task stores its result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    /// Drain all queued tasks, then join the workers.
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let task = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut q);
            }
        };
        let t0 = shared
            .obs
            .as_ref()
            .map(|obs| {
                obs.queue_depth.add(-1);
                std::time::Instant::now()
            });
        // Broadcast tasks handle their own panics (and re-raise on the
        // caller); this catch keeps a panicking detached task from killing
        // the worker and losing the rest of the queue.
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &shared.obs {
                obs.tasks_panicked.inc();
            }
        }
        if let (Some(obs), Some(t0)) = (&shared.obs, t0) {
            obs.busy_us.add(t0.elapsed().as_micros() as u64);
            obs.tasks.inc();
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared progress over a fixed set of blocks, packed into **one** atomic
/// word: the low 32 bits are the claim cursor (bumped by [`claim`]), the
/// high 32 bits count completed blocks (bumped by [`complete`]). This is
/// the heart of work-assisting segment scheduling: workers take the next
/// unscanned block with a single `fetch_add` — no per-worker task lists,
/// no CAS retry loops — and a worker that drains the cursor can read, from
/// the same word, whether a tail of claimed-but-unfinished blocks remains
/// worth assisting.
///
/// The claim cursor may overshoot `total` (each worker that finds the
/// cursor exhausted bumps it once past the end), so [`claimed`] caps at
/// `total` while [`claim_attempts`] exposes the raw count for
/// coordination-cost instrumentation.
///
/// [`claim`]: WorkProgress::claim
/// [`complete`]: WorkProgress::complete
/// [`claimed`]: WorkProgress::claimed
/// [`claim_attempts`]: WorkProgress::claim_attempts
pub struct WorkProgress {
    packed: AtomicU64,
    total: u32,
}

const COMPLETED_ONE: u64 = 1 << 32;
const CLAIM_MASK: u64 = (1 << 32) - 1;

impl WorkProgress {
    /// Progress tracker over `total` blocks, none claimed or completed.
    ///
    /// # Panics
    /// Panics if `total` does not fit the 32-bit claim counter.
    pub fn new(total: usize) -> Self {
        assert!(
            total < u32::MAX as usize,
            "block count {total} exceeds the packed 32-bit claim counter"
        );
        WorkProgress {
            packed: AtomicU64::new(0),
            total: total as u32,
        }
    }

    /// Claim the next unscanned block. Returns its index, or `None` once
    /// every block has been claimed. One `fetch_add`, no retry loop; each
    /// index in `0..total` is handed out exactly once across all callers.
    pub fn claim(&self) -> Option<usize> {
        let idx = self.packed.fetch_add(1, Ordering::AcqRel) & CLAIM_MASK;
        if idx < self.total as u64 {
            Some(idx as usize)
        } else {
            None
        }
    }

    /// Record one block finished. Returns `(completed, all_done)` where
    /// `completed` counts blocks finished so far (including this one) —
    /// the caller observing `all_done` is the **last** completer and owns
    /// any end-of-segment notification.
    pub fn complete(&self) -> (u64, bool) {
        let prev = self.packed.fetch_add(COMPLETED_ONE, Ordering::AcqRel);
        let completed = (prev >> 32) + 1;
        (completed, completed == self.total as u64)
    }

    /// Blocks claimed so far, capped at `total` (the cursor itself may
    /// overshoot; see [`WorkProgress::claim_attempts`]).
    pub fn claimed(&self) -> u64 {
        (self.packed.load(Ordering::Acquire) & CLAIM_MASK).min(self.total as u64)
    }

    /// Blocks completed so far.
    pub fn completed(&self) -> u64 {
        self.packed.load(Ordering::Acquire) >> 32
    }

    /// Raw claim-cursor value: every atomic claim operation ever issued,
    /// including the bounded overshoot from workers discovering the cursor
    /// is exhausted. The coordination cost of the segment in one number —
    /// a solo scan must keep this at zero.
    pub fn claim_attempts(&self) -> u64 {
        self.packed.load(Ordering::Acquire) & CLAIM_MASK
    }

    /// Whether every block has been completed.
    pub fn is_done(&self) -> bool {
        self.completed() == self.total as u64
    }

    /// Number of blocks tracked.
    pub fn total(&self) -> usize {
        self.total as usize
    }
}

/// A claim source for one scan task: either a private solo range (zero
/// atomic operations — the single-worker fast path) or a [`WorkProgress`]
/// shared with sibling workers. Constructed *inside* each broadcast task
/// so the solo counter never needs to be `Sync`.
pub enum BlockClaims<'a> {
    /// Private cursor over `0..total`; no coordination.
    Solo {
        /// Next index to hand out.
        next: usize,
        /// One past the last index.
        total: usize,
    },
    /// Cursor shared with sibling workers via atomic claims.
    Shared(&'a WorkProgress),
}

impl<'a> BlockClaims<'a> {
    /// Solo claims over `0..total` — no atomics, for a lone worker.
    pub fn solo(total: usize) -> Self {
        BlockClaims::Solo { next: 0, total }
    }

    /// Claims shared with sibling workers through `progress`.
    pub fn shared(progress: &'a WorkProgress) -> Self {
        BlockClaims::Shared(progress)
    }

    /// Claim the next block index, or `None` when the range is exhausted.
    pub fn claim(&mut self) -> Option<usize> {
        match self {
            BlockClaims::Solo { next, total } => {
                if *next < *total {
                    let i = *next;
                    *next += 1;
                    Some(i)
                } else {
                    None
                }
            }
            BlockClaims::Shared(p) => p.claim(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn work_progress_claims_each_block_exactly_once_under_contention() {
        // Hammer one WorkProgress from many threads; every index must be
        // handed out exactly once and the completion counter must converge
        // to the total with exactly one all_done observation.
        const TOTAL: usize = 10_000;
        const THREADS: usize = 8;
        let progress = WorkProgress::new(TOTAL);
        let seen: Vec<AtomicUsize> = (0..TOTAL).map(|_| AtomicUsize::new(0)).collect();
        let all_done_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    while let Some(i) = progress.claim() {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                        let (_, all) = progress.complete();
                        if all {
                            all_done_seen.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "block {i} claimed once");
        }
        assert_eq!(progress.claimed(), TOTAL as u64);
        assert_eq!(progress.completed(), TOTAL as u64);
        assert!(progress.is_done());
        assert_eq!(all_done_seen.load(Ordering::SeqCst), 1, "one last completer");
        // Overshoot is bounded: each thread bumps the cursor at most once
        // past the end before seeing None.
        let overshoot = progress.claim_attempts() - TOTAL as u64;
        assert!(overshoot <= THREADS as u64, "overshoot {overshoot}");
    }

    #[test]
    fn work_progress_empty_set_is_immediately_exhausted() {
        let progress = WorkProgress::new(0);
        assert!(progress.claim().is_none());
        assert!(progress.is_done());
        assert_eq!(progress.claimed(), 0);
    }

    #[test]
    fn solo_claims_cover_the_range_without_touching_shared_state() {
        let mut claims = BlockClaims::solo(3);
        assert_eq!(claims.claim(), Some(0));
        assert_eq!(claims.claim(), Some(1));
        assert_eq!(claims.claim(), Some(2));
        assert_eq!(claims.claim(), None);
        assert_eq!(claims.claim(), None, "stays exhausted");
    }

    #[test]
    fn shared_claims_delegate_to_the_progress_word() {
        let progress = WorkProgress::new(2);
        let mut a = BlockClaims::shared(&progress);
        let mut b = BlockClaims::shared(&progress);
        assert_eq!(a.claim(), Some(0));
        assert_eq!(b.claim(), Some(1));
        assert_eq!(a.claim(), None);
        assert!(progress.claim_attempts() >= 2);
    }

    #[test]
    fn broadcast_returns_results_in_index_order() {
        let pool = WorkerPool::new(3);
        let out = pool.broadcast(8, &|i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn broadcast_borrows_from_the_stack() {
        let pool = WorkerPool::new(2);
        let data = vec![1u64, 2, 3, 4, 5];
        let data = &data;
        let parts = pool.broadcast(2, &|i| -> u64 {
            data.iter().skip(i).step_by(2).sum()
        });
        assert_eq!(parts.iter().sum::<u64>(), 15);
    }

    #[test]
    fn fan_out_one_runs_inline_without_tasks() {
        let pool = WorkerPool::new(2);
        let before = pool.tasks_executed();
        let tid = std::thread::current().id();
        let out = pool.broadcast(1, &|_| std::thread::current().id());
        assert_eq!(out, vec![tid], "fan_out=1 runs on the caller");
        assert_eq!(pool.tasks_executed(), before, "no task was queued");
    }

    #[test]
    fn spawn_count_is_constant_over_many_broadcasts() {
        let pool = WorkerPool::new(2);
        for _ in 0..200 {
            pool.broadcast(2, &|i| i);
        }
        assert_eq!(pool.threads_spawned(), 2);
        assert_eq!(pool.tasks_executed(), 400);
    }

    #[test]
    fn drop_drains_queued_detached_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping here must run everything still queued.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn broadcast_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(4, &|i| {
                if i == 2 {
                    panic!("task blew up");
                }
                i
            })
        }));
        assert!(r.is_err(), "panic must surface on the caller");
        // The pool survives and keeps serving work.
        assert_eq!(pool.broadcast(3, &|i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn detached_panic_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("detached boom"));
        let out = pool.broadcast(2, &|i| i);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(pool.tasks_panicked(), 1);
    }

    #[test]
    fn observed_pool_counts_tasks_and_busy_time() {
        let obs = Obs::new();
        let pool = WorkerPool::new_observed(2, "test", &obs);
        pool.broadcast(4, &|_| std::thread::sleep(std::time::Duration::from_millis(2)));
        pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        drop(pool); // drains the detached task
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counters["pool.test.tasks"], 5);
        assert!(snap.counters["pool.test.busy_us"] >= 5 * 2_000);
        assert_eq!(snap.gauges["pool.test.queue_depth"], 0, "drained");
        assert_eq!(snap.counters["pool.test.tasks_panicked"], 0);
    }

    #[test]
    fn observed_pool_exports_panicked_tasks() {
        let obs = Obs::new();
        let pool = WorkerPool::new_observed(1, "test", &obs);
        pool.execute(|| panic!("detached boom"));
        pool.execute(|| {});
        // Broadcast panics re-raise on the caller and must NOT count.
        let r = catch_unwind(AssertUnwindSafe(|| pool.broadcast(2, &|_| panic!("b"))));
        assert!(r.is_err());
        drop(pool);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counters["pool.test.tasks_panicked"], 1);
        assert_eq!(snap.counter("pool.test.tasks_panicked"), 1);
    }

    #[test]
    fn unobserved_pool_registers_nothing() {
        let obs = Obs::new();
        let pool = WorkerPool::new(2);
        pool.broadcast(4, &|i| i);
        drop(pool);
        assert!(obs.snapshot().unwrap().counters.is_empty());
    }

    #[test]
    fn rapid_create_drop_cycles_do_not_hang() {
        for _ in 0..100 {
            let pool = WorkerPool::new(2);
            pool.execute(|| {});
            drop(pool);
        }
    }
}
