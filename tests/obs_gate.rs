//! Observability overhead gate: a full [`Obs`] (sharded metrics + ring
//! tracer) on the live shared-scan server must cost at most 5% wall time
//! over the same server with observability off.
//!
//! The *off* path (instrumented-but-disabled, one `Option` branch per
//! site) is covered by the `obs_overhead` Criterion bench; this test
//! gates the *on* path with a plain median comparison so CI can run it
//! in seconds. Timing on shared runners is noisy, so the gate first
//! calibrates: two off measurements must agree within 2% before the 5%
//! on/off comparison counts, and the whole measurement retries a few
//! times before failing. `#[ignore]`d by default — CI's obs-slo-smoke
//! job runs it with `--ignored`.

use s3_engine::{BlockStore, Obs, SharedScanServer};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::Instant;

const JOBS: usize = 4;
const REPEATS: usize = 7;
const NOISE_BOUND: f64 = 0.02;
const ON_BOUND: f64 = 1.05;
const ATTEMPTS: usize = 4;

fn corpus() -> BlockStore {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), 1 << 20);
    BlockStore::from_text(&text, 4 << 10)
}

fn run_workload(store: &BlockStore, obs: &Obs) -> f64 {
    let t0 = Instant::now();
    let server = SharedScanServer::new_observed(store.clone(), 2, 2, obs);
    let handles: Vec<_> = (0..JOBS)
        .map(|i| {
            let p = format!("{}a", (b'b' + i as u8) as char);
            server.submit(PatternWordCount::prefix(p))
        })
        .collect();
    for h in handles {
        h.wait().expect("job completed");
    }
    server.shutdown();
    t0.elapsed().as_secs_f64() * 1e3
}

fn median(store: &BlockStore, on: bool) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let obs = if on { Obs::new() } else { Obs::off() };
            run_workload(store, &obs)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[test]
#[ignore = "timing gate; run explicitly (CI obs-slo-smoke passes --ignored)"]
fn observed_server_overhead_is_within_five_percent() {
    let store = corpus();
    // Warm caches and lazy init on both paths before measuring.
    run_workload(&store, &Obs::off());
    run_workload(&store, &Obs::new());

    let mut last = String::new();
    for attempt in 1..=ATTEMPTS {
        let off_a = median(&store, false);
        let on = median(&store, true);
        let off_b = median(&store, false);
        let noise = (off_a - off_b).abs() / off_a.min(off_b);
        let off = off_a.min(off_b);
        let ratio = on / off;
        eprintln!(
            "obs_gate attempt {attempt}: off {off_a:.2}/{off_b:.2} ms (noise {:.1}%), \
             on {on:.2} ms, ratio {ratio:.3}",
            noise * 100.0
        );
        if noise > NOISE_BOUND {
            last = format!("harness noise {:.1}% exceeds {:.0}%", noise * 100.0, NOISE_BOUND * 100.0);
            continue;
        }
        if ratio <= ON_BOUND {
            return;
        }
        last = format!("obs-on ratio {ratio:.3} exceeds {ON_BOUND}");
    }
    panic!("obs overhead gate failed after {ATTEMPTS} attempts: {last}");
}
