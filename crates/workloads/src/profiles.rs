//! Simulator cost profiles matching the paper's workloads, and the Table I
//! derivation.
//!
//! Calibration sources (all from Section V):
//!
//! - **Normal wordcount** (Table I): 160 GB input; ~250 M map output
//!   records (~1526 records/MB); ~2.4 GB map output (ratio 0.015); ~60–80 k
//!   reduce output records; ~1.5 MB reduce output; ~240 s per job.
//! - **Heavy wordcount** (Section V-E): 10× the map output, 200× the
//!   reduce output (by size), ~1.5× the per-job processing time.
//! - **Selection** (Section V-G): 400 GB lineitem input, 10% selectivity.

use s3_mapreduce::JobProfile;
use std::sync::Arc;

/// Normal wordcount (Table I).
pub fn wordcount_normal() -> Arc<JobProfile> {
    Arc::new(JobProfile {
        name: "wordcount".into(),
        map_cpu_s_per_mb: 0.0015,
        map_output_ratio: 0.015,
        map_output_records_per_mb: 1526.0,
        reduce_cpu_s_per_mb: 0.002,
        reduce_output_ratio: 0.000625, // 1.5 MB / 2.4 GB
        num_reduce_tasks: 30,
    })
}

/// Heavy wordcount: 10× map output, 200× reduce output, ~1.5× job time.
/// The extra time is CPU (more records emitted and sorted), so the scan
/// share shrinks — exactly why sharing helps less here (Figure 4(c)).
pub fn wordcount_heavy() -> Arc<JobProfile> {
    Arc::new(JobProfile {
        name: "wordcount-heavy".into(),
        map_cpu_s_per_mb: 0.013,
        map_output_ratio: 0.15,
        map_output_records_per_mb: 15_260.0,
        reduce_cpu_s_per_mb: 0.002,
        reduce_output_ratio: 0.0125, // 200x output over 10x shuffle
        num_reduce_tasks: 30,
    })
}

/// SQL selection over lineitem at ~10% selectivity (Section V-G).
pub fn selection() -> Arc<JobProfile> {
    Arc::new(JobProfile {
        name: "selection".into(),
        map_cpu_s_per_mb: 0.004, // field split + predicate per row
        map_output_ratio: 0.10,  // 10% of tuples pass, projected columns
        map_output_records_per_mb: 800.0,
        reduce_cpu_s_per_mb: 0.002,
        reduce_output_ratio: 1.0, // identity reduce: selected tuples out
        num_reduce_tasks: 30,
    })
}

/// Distributed grep: map-only in the simulator (Hadoop grep is usually
/// run with zero reduces and its tiny matches collected directly). Lets
/// the scheduler stack exercise jobs without a reduce phase.
pub fn grep() -> Arc<JobProfile> {
    Arc::new(JobProfile {
        name: "grep".into(),
        map_cpu_s_per_mb: 0.0008,
        map_output_ratio: 0.0005,
        map_output_records_per_mb: 5.0,
        reduce_cpu_s_per_mb: 0.0,
        reduce_output_ratio: 0.0,
        num_reduce_tasks: 0,
    })
}

/// One row of Table I, derived from a profile and a dataset size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Total input, MB.
    pub input_mb: f64,
    /// Map output records over the whole input.
    pub map_output_records: f64,
    /// Reduce output records (distinct keys surviving the filter).
    pub reduce_output_records: f64,
    /// Map output, MB.
    pub map_output_mb: f64,
    /// Reduce output, MB.
    pub reduce_output_mb: f64,
}

/// Derive Table I quantities for `profile` over `input_mb` of data.
/// `reduce_output_records` uses the paper's reported 60–80 k distinct words
/// scaled by the reduce output size ratio against the normal workload.
pub fn table1(profile: &JobProfile, input_mb: f64) -> Table1 {
    assert!(input_mb > 0.0, "input size must be positive");
    let map_output_mb = profile.map_output_mb(input_mb);
    let reduce_output_mb = profile.reduce_output_mb(map_output_mb);
    // Record size on the reduce side ~ 22 bytes/record gives the paper's
    // 60-80k records in ~1.5 MB.
    let reduce_output_records = reduce_output_mb * 1024.0 * 1024.0 / 22.0;
    Table1 {
        input_mb,
        map_output_records: profile.map_output_records_per_mb * input_mb,
        reduce_output_records,
        map_output_mb,
        reduce_output_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0;

    #[test]
    fn normal_wordcount_matches_table_1() {
        let t = table1(&wordcount_normal(), 160.0 * GB);
        // ~250 million map output records.
        assert!(
            (2.4e8..2.6e8).contains(&t.map_output_records),
            "map records {}",
            t.map_output_records
        );
        // ~2.4 GB map output.
        assert!(
            (2.3 * GB..2.5 * GB).contains(&t.map_output_mb),
            "map out {}",
            t.map_output_mb
        );
        // ~1.5 MB reduce output.
        assert!(
            (1.3..1.7).contains(&t.reduce_output_mb),
            "reduce out {}",
            t.reduce_output_mb
        );
        // ~60-80 thousand reduce output records.
        assert!(
            (55_000.0..85_000.0).contains(&t.reduce_output_records),
            "reduce records {}",
            t.reduce_output_records
        );
    }

    #[test]
    fn heavy_is_10x_map_and_200x_reduce_output() {
        let n = table1(&wordcount_normal(), 160.0 * GB);
        let h = table1(&wordcount_heavy(), 160.0 * GB);
        let map_ratio = h.map_output_mb / n.map_output_mb;
        let reduce_ratio = h.reduce_output_mb / n.reduce_output_mb;
        assert!((9.0..11.0).contains(&map_ratio), "map x{map_ratio}");
        assert!((180.0..220.0).contains(&reduce_ratio), "reduce x{reduce_ratio}");
    }

    #[test]
    fn selection_selects_ten_percent() {
        let s = selection();
        let t = table1(&s, 400.0 * GB);
        assert!((t.map_output_mb / t.input_mb - 0.10).abs() < 1e-9);
        // Identity reduce: output equals shuffle input.
        assert!((t.reduce_output_mb - t.map_output_mb).abs() < 1e-9);
    }

    #[test]
    fn profiles_request_30_reducers() {
        for p in [wordcount_normal(), wordcount_heavy(), selection()] {
            assert_eq!(p.num_reduce_tasks, 30);
        }
    }
}
