//! Figure 3 as a Criterion bench: simulate a merged batch of n wordcount
//! jobs over the 160 GB dataset and report the simulation's measured TET,
//! average map time, and average reduce time alongside the wall-clock cost
//! of regenerating the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s3_bench::experiments::{run_fig3, DEFAULT_SEED};

fn bench_fig3(c: &mut Criterion) {
    // Print the paper-style table once so `cargo bench` output contains
    // the reproduced figure.
    let full = run_fig3(10, DEFAULT_SEED);
    println!("\n[fig3] n -> (TET_ratio, map_ratio, reduce_ratio):");
    for p in &full.points {
        let (t, m, r) = full.overhead_at(p.n);
        println!("[fig3] {:>2} -> ({t:.3}, {m:.3}, {r:.3})", p.n);
    }

    let mut g = c.benchmark_group("fig3_combined_jobs");
    g.sample_size(10);
    for n in [1usize, 5, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_fig3(n, DEFAULT_SEED));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
