#![warn(missing_docs)]

//! # s3-cluster — Hadoop-style cluster topology model
//!
//! Static description of a MapReduce cluster (racks, nodes, slots, hardware
//! rates) plus the *dynamic* pieces the S³ scheduler reacts to: per-node
//! speed profiles over simulated time (straggler / slowdown injection) and a
//! simple network model for shuffle and remote-read costs.
//!
//! The paper's evaluation cluster — 1 master + 40 slaves in three racks
//! (15/15/10), 1 Gbps links, one map slot per node, 30 reduce tasks — is
//! available as [`ClusterTopology::paper_cluster`].

pub mod chaos;
pub mod network;
pub mod node;
pub mod slowdown;
pub mod topology;

pub use chaos::{ChaosConfig, ChaosPlan, Fault};
pub use network::NetworkModel;
pub use node::{Node, NodeId, NodeSpec, RackId};
pub use slowdown::{FailureSchedule, SlowdownSchedule, SpeedProfile};
pub use topology::{ClusterBuilder, ClusterTopology};
