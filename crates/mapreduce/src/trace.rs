//! Structured execution traces.
//!
//! When enabled, the engine records one [`TraceEvent`] per task start and
//! finish plus job lifecycle points. Traces feed the ASCII timeline
//! renderer (used by examples and debugging) and give tests a precise view
//! of *when* and *where* work ran — e.g. "no two maps of one batch
//! overlapped on one slot", or "S³'s sub-jobs never overlap their map
//! phases".
//!
//! [`Trace::to_obs_events`] converts a simulator trace into the `s3-obs`
//! event schema, so sim traces and real-engine traces export to
//! Perfetto/`chrome://tracing` through the **same** converter
//! (`s3_obs::chrome`): one track per simulated node, map/reduce intervals
//! as spans, lifecycle points as instants.

use crate::batch::BatchKey;
use crate::job::JobId;
use s3_cluster::NodeId;
use s3_obs::chrome::{engine_event_to_chrome, ChromeEvent};
use s3_obs::trace::{Event as ObsEvent, Ids, Phase, NO_ID};
use s3_sim::SimTime;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A job was submitted.
    JobSubmitted,
    /// A job's results became available.
    JobCompleted,
    /// A map task started on a node.
    MapStart,
    /// A map task finished.
    MapEnd,
    /// A map attempt was lost to a TaskTracker death.
    MapFailed,
    /// A reduce task started on a node.
    ReduceStart,
    /// A reduce task finished.
    ReduceEnd,
    /// A reduce attempt was lost to a TaskTracker death.
    ReduceFailed,
    /// Periodic slot checking excluded a slow node from assignment.
    SlotExcluded,
    /// A previously excluded node passed its speed check and was
    /// re-admitted to assignment.
    SlotReadmitted,
    /// Dynamic sub-job adjustment launched a sub-job sized from the
    /// healthy slot count rather than the static total (the batch and the
    /// merged jobs are recorded on the event).
    SubJobAdjusted,
}

/// One trace record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Node involved (None for job lifecycle events).
    pub node: Option<NodeId>,
    /// Jobs involved: the submitted/completed job, or every job sharing a
    /// task's scan.
    pub jobs: Vec<JobId>,
    /// Batch the task belonged to (None for job lifecycle events).
    pub batch: Option<BatchKey>,
    /// Block a map task scanned (None for reduce/lifecycle events). This
    /// is what lets the invariant checker prove scan-exactly-once coverage
    /// from the trace alone.
    #[serde(default)]
    pub block: Option<s3_dfs::BlockId>,
}

/// An in-memory trace.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event (engine-internal, but public so custom drivers can
    /// record into the same format).
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at <= ev.at),
            "trace must be appended in time order"
        );
        self.events.push(ev);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Completed (start, end) intervals of map tasks on `node`; a failed
    /// attempt still closes its interval (the slot was busy until the
    /// failure was detected).
    pub fn map_intervals_on(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        self.task_intervals_on(node, TraceKind::MapStart, &[TraceKind::MapEnd, TraceKind::MapFailed])
    }

    /// Completed (start, end) intervals of reduce tasks on `node`.
    pub fn reduce_intervals_on(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        self.task_intervals_on(
            node,
            TraceKind::ReduceStart,
            &[TraceKind::ReduceEnd, TraceKind::ReduceFailed],
        )
    }

    fn task_intervals_on(
        &self,
        node: NodeId,
        start: TraceKind,
        ends: &[TraceKind],
    ) -> Vec<(SimTime, SimTime)> {
        // With one slot per kind per node in the default configuration,
        // starts and ends alternate; pair them positionally per node.
        let mut out = Vec::new();
        let mut open: Vec<SimTime> = Vec::new();
        for e in &self.events {
            if e.node != Some(node) {
                continue;
            }
            if e.kind == start {
                open.push(e.at);
            } else if ends.contains(&e.kind) {
                let s = open.pop().expect("end without start");
                out.push((s, e.at));
            }
        }
        out
    }

    /// Busy fraction of `node`'s map slot between the first and last event
    /// in the trace (0 when the trace is empty).
    pub fn map_utilization_of(&self, node: NodeId) -> f64 {
        let Some(first) = self.events.first().map(|e| e.at) else {
            return 0.0;
        };
        let last = self.events.last().expect("non-empty").at;
        let span = last.saturating_since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .map_intervals_on(node)
            .iter()
            .map(|(s, e)| e.saturating_since(*s).as_secs_f64())
            .sum();
        (busy / span).min(1.0)
    }

    /// Convert this sim trace into `s3-obs` events (simulated seconds
    /// become microseconds of trace time): map/reduce task intervals pair
    /// into spans named `map`/`reduce` (`map_failed`/`reduce_failed` when
    /// the attempt was lost), lifecycle and scheduler events become
    /// instants. Track ids are `node + 1`; track 0 carries node-less
    /// lifecycle events. Each event's ids hold the first involved job, the
    /// scanned block (as `seg`), and the sharing-job count (as `n`).
    pub fn to_obs_events(&self) -> Vec<ObsEvent> {
        fn us(t: SimTime) -> u64 {
            (t.as_secs_f64() * 1e6).round() as u64
        }
        fn ids_of(e: &TraceEvent) -> Ids {
            Ids {
                job: e.jobs.first().map_or(NO_ID, |j| j.0 as u64),
                seg: e.block.map_or(NO_ID, |b| b.0 as u64),
                n: e.jobs.len() as u64,
                ..Ids::none()
            }
        }
        fn tid_of(e: &TraceEvent) -> u64 {
            e.node.map_or(0, |n| n.0 as u64 + 1)
        }
        let instant = |e: &TraceEvent, name: &'static str| ObsEvent {
            ts_us: us(e.at),
            dur_us: 0,
            name,
            ph: Phase::Instant,
            tid: tid_of(e),
            ids: ids_of(e),
        };

        let mut out = Vec::new();
        // Per-node stacks of open task starts, map and reduce separately.
        let mut open_maps: Vec<Vec<&TraceEvent>> = Vec::new();
        let mut open_reduces: Vec<Vec<&TraceEvent>> = Vec::new();
        let close = |open: &mut Vec<Vec<&TraceEvent>>,
                         e: &TraceEvent,
                         name: &'static str,
                         out: &mut Vec<ObsEvent>| {
            let node = e.node.expect("task events carry a node").0 as usize;
            if let Some(start) = open.get_mut(node).and_then(Vec::pop) {
                out.push(ObsEvent {
                    ts_us: us(start.at),
                    dur_us: us(e.at).saturating_sub(us(start.at)),
                    name,
                    ph: Phase::Span,
                    tid: tid_of(start),
                    ids: ids_of(start),
                });
            }
        };
        for e in &self.events {
            match e.kind {
                TraceKind::JobSubmitted => out.push(instant(e, "job_submitted")),
                TraceKind::JobCompleted => out.push(instant(e, "job_completed")),
                TraceKind::MapStart | TraceKind::ReduceStart => {
                    let node = e.node.expect("task events carry a node").0 as usize;
                    let open = if e.kind == TraceKind::MapStart {
                        &mut open_maps
                    } else {
                        &mut open_reduces
                    };
                    if open.len() <= node {
                        open.resize_with(node + 1, Vec::new);
                    }
                    open[node].push(e);
                }
                TraceKind::MapEnd => close(&mut open_maps, e, "map", &mut out),
                TraceKind::MapFailed => close(&mut open_maps, e, "map_failed", &mut out),
                TraceKind::ReduceEnd => close(&mut open_reduces, e, "reduce", &mut out),
                TraceKind::ReduceFailed => {
                    close(&mut open_reduces, e, "reduce_failed", &mut out);
                }
                TraceKind::SlotExcluded => out.push(instant(e, "slot_excluded")),
                TraceKind::SlotReadmitted => out.push(instant(e, "slot_readmitted")),
                TraceKind::SubJobAdjusted => out.push(instant(e, "subjob_adjusted")),
            }
        }
        out.sort_by_key(|e| (e.ts_us, e.tid));
        out
    }

    /// This trace as Chrome trace events under process `pid`, through the
    /// same converter the real engine's traces use. Includes
    /// process/thread-name metadata so Perfetto labels the node tracks.
    pub fn to_chrome_events(&self, pid: u64) -> Vec<ChromeEvent> {
        let obs_events = self.to_obs_events();
        let mut out = vec![ChromeEvent::process_name(pid, "s3-sim")];
        let mut named: Vec<u64> = Vec::new();
        for e in &obs_events {
            if !named.contains(&e.tid) {
                named.push(e.tid);
            }
        }
        named.sort_unstable();
        for tid in named {
            let label = if tid == 0 {
                "lifecycle".to_string()
            } else {
                format!("node{}", tid - 1)
            };
            out.push(ChromeEvent::thread_name(pid, tid, &label));
        }
        out.extend(obs_events.iter().map(|e| engine_event_to_chrome(e, pid, "sim")));
        out
    }

    /// Render an ASCII timeline: one row per node, time bucketed into
    /// `width` columns; `M` = map busy, `R` = reduce busy, `B` = both,
    /// `.` = idle.
    pub fn render_timeline(&self, nodes: &[NodeId], width: usize) -> String {
        assert!(width > 0, "timeline needs at least one column");
        let Some(first) = self.events.first().map(|e| e.at) else {
            return String::from("(empty trace)\n");
        };
        let last = self.events.last().expect("non-empty").at;
        let span = last.saturating_since(first).as_secs_f64().max(1e-9);
        let bucket_of = |t: SimTime| -> usize {
            let frac = t.saturating_since(first).as_secs_f64() / span;
            ((frac * width as f64) as usize).min(width - 1)
        };

        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {:.1}s .. {:.1}s ({} columns of {:.1}s)\n",
            first.as_secs_f64(),
            last.as_secs_f64(),
            width,
            span / width as f64
        ));
        for &node in nodes {
            let mut row = vec![b'.'; width];
            for (s, e) in self.map_intervals_on(node) {
                for cell in &mut row[bucket_of(s)..=bucket_of(e)] {
                    *cell = b'M';
                }
            }
            for (s, e) in self.reduce_intervals_on(node) {
                for cell in &mut row[bucket_of(s)..=bucket_of(e)] {
                    *cell = if *cell == b'M' { b'B' } else { b'R' };
                }
            }
            out.push_str(&format!(
                "{:>7} |{}|\n",
                node.to_string(),
                String::from_utf8(row).expect("ASCII")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, kind: TraceKind, node: Option<u32>) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_secs(at_s),
            kind,
            node: node.map(NodeId),
            jobs: vec![JobId(0)],
            batch: None,
            block: None,
        }
    }

    #[test]
    fn intervals_pair_starts_and_ends() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(1)));
        t.push(ev(3, TraceKind::MapEnd, Some(1)));
        t.push(ev(4, TraceKind::MapStart, Some(1)));
        t.push(ev(9, TraceKind::MapEnd, Some(1)));
        let iv = t.map_intervals_on(NodeId(1));
        assert_eq!(
            iv,
            vec![
                (SimTime::ZERO, SimTime::from_secs(3)),
                (SimTime::from_secs(4), SimTime::from_secs(9))
            ]
        );
        assert!(t.map_intervals_on(NodeId(2)).is_empty());
    }

    #[test]
    fn utilization_is_busy_over_span() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(1)));
        t.push(ev(5, TraceKind::MapEnd, Some(1)));
        t.push(ev(10, TraceKind::JobCompleted, None));
        assert!((t.map_utilization_of(NodeId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(t.map_utilization_of(NodeId(2)), 0.0);
    }

    #[test]
    fn timeline_marks_busy_cells() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::MapStart, Some(0)));
        t.push(ev(5, TraceKind::MapEnd, Some(0)));
        t.push(ev(5, TraceKind::ReduceStart, Some(0)));
        t.push(ev(10, TraceKind::ReduceEnd, Some(0)));
        let s = t.render_timeline(&[NodeId(0), NodeId(1)], 10);
        assert!(s.contains('M'));
        assert!(s.contains('R'));
        let idle_row = s.lines().last().unwrap();
        assert!(idle_row.contains(".........."), "node1 is idle: {idle_row}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::new();
        assert_eq!(t.render_timeline(&[NodeId(0)], 5), "(empty trace)\n");
        assert_eq!(t.map_utilization_of(NodeId(0)), 0.0);
    }

    #[test]
    fn obs_conversion_pairs_tasks_into_spans() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::JobSubmitted, None));
        t.push(ev(1, TraceKind::MapStart, Some(2)));
        t.push(ev(4, TraceKind::MapEnd, Some(2)));
        t.push(ev(4, TraceKind::ReduceStart, Some(2)));
        t.push(ev(6, TraceKind::ReduceFailed, Some(2)));
        t.push(ev(9, TraceKind::JobCompleted, None));
        let evs = t.to_obs_events();
        let map = evs.iter().find(|e| e.name == "map").unwrap();
        assert_eq!(map.ph, Phase::Span);
        assert_eq!(map.ts_us, 1_000_000);
        assert_eq!(map.dur_us, 3_000_000);
        assert_eq!(map.tid, 3, "node 2 renders on track 3");
        assert_eq!(map.ids.job, 0);
        let failed = evs.iter().find(|e| e.name == "reduce_failed").unwrap();
        assert_eq!(failed.dur_us, 2_000_000);
        assert!(evs.iter().any(|e| e.name == "job_submitted" && e.tid == 0));
        assert!(evs.iter().any(|e| e.name == "job_completed"));
        assert!(evs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn chrome_export_validates_against_schema() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::JobSubmitted, None));
        t.push(ev(0, TraceKind::MapStart, Some(0)));
        t.push(ev(2, TraceKind::MapEnd, Some(0)));
        t.push(ev(3, TraceKind::JobCompleted, None));
        let chrome = t.to_chrome_events(7);
        let mut buf = Vec::new();
        s3_obs::chrome::write_chrome_trace(&mut buf, &chrome).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let n = s3_obs::chrome::validate_chrome_trace(&text).unwrap();
        // 2 lifecycle instants + 1 map span + process_name + 2 thread_names.
        assert_eq!(n, 6);
    }

    #[test]
    fn kind_filter() {
        let mut t = Trace::new();
        t.push(ev(0, TraceKind::JobSubmitted, None));
        t.push(ev(1, TraceKind::MapStart, Some(0)));
        assert_eq!(t.of_kind(TraceKind::JobSubmitted).count(), 1);
        assert_eq!(t.of_kind(TraceKind::ReduceEnd).count(), 0);
    }
}
