//! Closed-form TET/ART for the idealized scenarios of Section III.
//!
//! The paper motivates S³ with two-job worked examples (Examples 1–3)
//! computed under three idealizations: every job takes exactly `T` seconds
//! of pure scanning, merging jobs is free, and scheduling has no overhead.
//! This module reproduces those formulas for any number of jobs; the unit
//! tests pin the exact numbers printed in the paper.

/// An idealized scenario: identical I/O-bound jobs over one file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seconds a lone job needs (the full-file scan time).
    pub job_secs: f64,
    /// Arrival times in seconds, non-decreasing.
    pub arrivals: Vec<f64>,
}

/// TET and ART of a schedule, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TetArt {
    /// Total execution time: first submission to last completion.
    pub tet: f64,
    /// Average response time.
    pub art: f64,
}

impl Scenario {
    /// Create, validating inputs.
    ///
    /// # Panics
    /// Panics on an empty or unsorted arrival list or non-positive job time.
    pub fn new(job_secs: f64, arrivals: Vec<f64>) -> Self {
        assert!(job_secs > 0.0, "job time must be positive");
        assert!(!arrivals.is_empty(), "need at least one job");
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        Scenario { job_secs, arrivals }
    }

    fn tet_art(&self, completions: &[f64]) -> TetArt {
        let first = self.arrivals[0];
        let last = completions
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let art = completions
            .iter()
            .zip(&self.arrivals)
            .map(|(c, a)| c - a)
            .sum::<f64>()
            / self.arrivals.len() as f64;
        TetArt {
            tet: last - first,
            art,
        }
    }

    /// FIFO: jobs run back to back; a job starts at
    /// `max(arrival, previous completion)`.
    pub fn fifo(&self) -> TetArt {
        let mut completions = Vec::with_capacity(self.arrivals.len());
        let mut free_at = f64::NEG_INFINITY;
        for &a in &self.arrivals {
            let start = a.max(free_at);
            free_at = start + self.job_secs;
            completions.push(free_at);
        }
        self.tet_art(&completions)
    }

    /// MRShare with the given consecutive group sizes: a group starts when
    /// its last member has arrived and the cluster is free; all members
    /// complete together after one merged scan.
    ///
    /// # Panics
    /// Panics if the group sizes do not sum to the number of jobs.
    pub fn mrshare(&self, groups: &[usize]) -> TetArt {
        assert_eq!(
            groups.iter().sum::<usize>(),
            self.arrivals.len(),
            "group sizes must cover all jobs"
        );
        let mut completions = Vec::with_capacity(self.arrivals.len());
        let mut free_at = f64::NEG_INFINITY;
        let mut idx = 0;
        for &g in groups {
            assert!(g > 0, "empty group");
            let last_arrival = self.arrivals[idx + g - 1];
            let start = last_arrival.max(free_at);
            free_at = start + self.job_secs;
            for _ in 0..g {
                completions.push(free_at);
            }
            idx += g;
        }
        self.tet_art(&completions)
    }

    /// MRShare batching every job into one group (MRS1).
    pub fn mrshare_single(&self) -> TetArt {
        self.mrshare(&[self.arrivals.len()])
    }

    /// Idealized S³: a job joins the circular scan immediately on arrival
    /// and completes exactly one revolution later — response time is always
    /// `T`, regardless of how many jobs share the scan.
    pub fn s3(&self) -> TetArt {
        let completions: Vec<f64> = self.arrivals.iter().map(|a| a + self.job_secs).collect();
        self.tet_art(&completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn paper_example_1_dense() {
        // Two 100s jobs arriving at {0, 20}.
        let s = Scenario::new(100.0, vec![0.0, 20.0]);
        let fifo = s.fifo();
        assert!(close(fifo.tet, 200.0) && close(fifo.art, 140.0), "{fifo:?}");
        let mrs = s.mrshare_single();
        assert!(close(mrs.tet, 120.0) && close(mrs.art, 110.0), "{mrs:?}");
    }

    #[test]
    fn paper_example_2_sparse() {
        // Two 100s jobs arriving at {0, 80}.
        let s = Scenario::new(100.0, vec![0.0, 80.0]);
        let fifo = s.fifo();
        assert!(close(fifo.tet, 200.0) && close(fifo.art, 110.0), "{fifo:?}");
        let mrs = s.mrshare_single();
        assert!(close(mrs.tet, 180.0) && close(mrs.art, 140.0), "{mrs:?}");
    }

    #[test]
    fn paper_example_3_s3() {
        let dense = Scenario::new(100.0, vec![0.0, 20.0]).s3();
        assert!(close(dense.tet, 120.0) && close(dense.art, 100.0), "{dense:?}");
        let sparse = Scenario::new(100.0, vec![0.0, 80.0]).s3();
        assert!(close(sparse.tet, 180.0) && close(sparse.art, 100.0), "{sparse:?}");
    }

    #[test]
    fn s3_dominates_both_baselines_in_the_examples() {
        for arrivals in [vec![0.0, 20.0], vec![0.0, 80.0]] {
            let s = Scenario::new(100.0, arrivals);
            let (f, m, x) = (s.fifo(), s.mrshare_single(), s.s3());
            assert!(x.tet <= f.tet && x.tet <= m.tet);
            assert!(x.art <= f.art && x.art <= m.art);
        }
    }

    #[test]
    fn fifo_idle_gap() {
        // Gap larger than the job: no queueing at all.
        let s = Scenario::new(100.0, vec![0.0, 500.0]);
        let f = s.fifo();
        assert!(close(f.tet, 600.0) && close(f.art, 100.0));
    }

    #[test]
    fn mrshare_groups_serialize() {
        let s = Scenario::new(100.0, vec![0.0, 10.0, 20.0, 30.0]);
        let m = s.mrshare(&[2, 2]);
        // Group 1 starts at 10, done 110; group 2 starts at max(30,110)=110,
        // done 210.
        assert!(close(m.tet, 210.0), "{m:?}");
        assert!(close(m.art, (110.0 + 100.0 + 190.0 + 180.0) / 4.0), "{m:?}");
    }

    #[test]
    #[should_panic(expected = "cover all jobs")]
    fn bad_groups_panic() {
        Scenario::new(100.0, vec![0.0, 1.0]).mrshare(&[3]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        Scenario::new(100.0, vec![5.0, 1.0]);
    }
}
