//! Integration tests for the persistent worker-pool runtime:
//!
//! - outputs are identical across thread counts for every engine entry
//!   point (the pool is a pure optimization);
//! - thread creation is O(servers), never O(segment iterations or jobs)
//!   — the tentpole property, checked via pool instrumentation;
//! - a job finishing a *heavy* reduce does not stall the segment cadence
//!   of jobs still scanning (finalization runs off the coordinator);
//! - chaos: rapid create/submit/shutdown cycles never hang, and shutdown
//!   drains queued finalization work so no submitted job loses its output.

use s3_engine::{
    run_job, run_merged, BlockStore, ExecConfig, MapReduceJob, SharedScanServer,
};
use std::time::{Duration, Instant};

/// Word count with a prefix filter; declares the fold + per-token paths.
struct Count(String);

impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.0) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        true
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
    fn map_is_per_token(&self) -> bool {
        true
    }
    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.0) {
            emit(token.to_string(), 1);
        }
    }
}

/// Single-key aggregation whose reduce sleeps: a controllably heavy
/// finalization with trivially cheap scanning.
struct Agg {
    reduce_sleep: Duration,
}

impl MapReduceJob for Agg {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for _ in line.split_whitespace() {
            emit("total".to_string(), 1);
        }
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        if !self.reduce_sleep.is_zero() {
            std::thread::sleep(self.reduce_sleep);
        }
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        true
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
}

fn store() -> BlockStore {
    let text = "alpha beta alpha gamma\nbeta delta alpha\nepsilon beta gamma delta\n".repeat(400);
    BlockStore::from_text(&text, 1024)
}

#[test]
fn outputs_identical_across_thread_counts() {
    let s = store();
    let prefixes = ["", "a", "be", "zz"];
    let reference: Vec<_> = prefixes
        .iter()
        .map(|p| {
            run_job(
                &Count(p.to_string()),
                &s,
                &ExecConfig {
                    num_threads: 1,
                    num_reducers: 4,
                ..ExecConfig::default()
                },
            )
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let cfg = ExecConfig {
            num_threads: threads,
            num_reducers: 4,
        ..ExecConfig::default()
        };
        // run_job
        for (p, base) in prefixes.iter().zip(&reference) {
            let out = run_job(&Count(p.to_string()), &s, &cfg);
            assert_eq!(out.records, base.records, "run_job threads={threads} p={p:?}");
            assert_eq!(out.stats.map_output_records, base.stats.map_output_records);
        }
        // run_merged
        let jobs: Vec<Count> = prefixes.iter().map(|p| Count(p.to_string())).collect();
        let refs: Vec<&Count> = jobs.iter().collect();
        let merged = run_merged(&refs, &s, &cfg);
        for ((p, base), m) in prefixes.iter().zip(&reference).zip(&merged) {
            assert_eq!(m.records, base.records, "run_merged threads={threads} p={p:?}");
        }
        // SharedScanServer
        let server = SharedScanServer::new(s.clone(), 3, threads);
        let handles: Vec<_> = prefixes
            .iter()
            .map(|p| server.submit(Count(p.to_string())))
            .collect();
        for ((p, base), h) in prefixes.iter().zip(&reference).zip(handles) {
            let out = h.wait().expect("job completed");
            assert_eq!(out.records, base.records, "server threads={threads} p={p:?}");
            assert_eq!(out.stats.map_output_records, base.stats.map_output_records);
        }
        server.shutdown();
    }
}

#[test]
fn server_thread_creation_is_constant() {
    // One-block segments: many segment iterations per revolution. The old
    // runtime spawned `num_threads` OS threads per iteration; the pool
    // runtime spawns 2 * num_threads once, at server start, and never more.
    let s = store();
    let num_threads = 3;
    let server = SharedScanServer::new(s.clone(), 1, num_threads);

    let first = server
        .submit(Count(String::new()))
        .wait()
        .expect("job completed");
    let spawned_after_one = server.pool_threads_spawned();
    assert_eq!(
        spawned_after_one,
        2 * num_threads as u64,
        "scan pool + reduce pool, spawned once at startup"
    );

    for p in ["a", "be", "ga", "de", ""] {
        let out = server
            .submit(Count(p.to_string()))
            .wait()
            .expect("job completed");
        if p.is_empty() {
            assert_eq!(out.records, first.records);
        }
    }
    assert!(
        server.iterations() >= 2 * s.num_blocks() as u64,
        "many segment iterations ran ({})",
        server.iterations()
    );
    assert_eq!(
        server.pool_threads_spawned(),
        spawned_after_one,
        "thread creation must not grow with jobs or segment iterations"
    );
    server.shutdown();
}

#[test]
fn heavy_reduce_does_not_stall_the_scan() {
    let s = store();
    let expected_total = s
        .iter()
        .map(|b| memchr::tokens(b).count())
        .sum::<usize>() as i64;
    let server = SharedScanServer::new(s, 1, 2);

    // Heavy job: joins first, so it finishes its revolution first — and
    // then sleeps 1.5 s in reduce, on the reduce pool.
    let heavy = server.submit(Agg {
        reduce_sleep: Duration::from_millis(1500),
    });
    while server.iterations() < 8 {
        std::thread::sleep(Duration::from_micros(200));
    }
    // Light job: still mid-revolution when the heavy job finishes.
    let light = server.submit(Agg {
        reduce_sleep: Duration::ZERO,
    });

    let t0 = Instant::now();
    let light_out = light.wait().expect("job completed");
    let light_wait = t0.elapsed();
    assert_eq!(light_out.records["total"], expected_total);

    // The light job must complete while the heavy reduce is still asleep:
    // finalization runs off the coordinator, so the segment cadence never
    // paused. (With the old on-coordinator finish, light.wait() would have
    // been delayed by the full 1.5 s sleep.)
    let stolen = heavy.try_take();
    assert!(
        stolen.is_none(),
        "heavy reduce should still be running when the light job completes \
         (light waited {light_wait:?})"
    );
    let heavy_out = heavy.wait().expect("job completed");
    assert_eq!(heavy_out.records["total"], expected_total);
    server.shutdown();
}

#[test]
fn chaos_rapid_create_submit_shutdown_never_hangs_or_loses_outputs() {
    // Seeded shape variation: thread counts, segment sizes, and job counts
    // all cycle; shutdown is signalled immediately after submission, while
    // the pool is live. Every submitted job must still publish its output
    // (shutdown drains queued finalization tasks), and nothing may hang
    // (no lost wakeups between submit, coordinator, and pools).
    let text = "alpha beta gamma\ndelta epsilon\n".repeat(20);
    let expected = run_job(
        &Count(String::new()),
        &BlockStore::from_text(&text, 64),
        &ExecConfig {
            num_threads: 1,
            num_reducers: 2,
        ..ExecConfig::default()
        },
    );
    for seed in 0u64..150 {
        let threads = (seed % 3 + 1) as usize;
        let bps = (seed % 4 + 1) as usize;
        let njobs = (seed % 3) as usize;
        let s = BlockStore::from_text(&text, 64);
        let server = SharedScanServer::new(s, bps, threads);
        let handles: Vec<_> = (0..njobs)
            .map(|_| server.submit(Count(String::new())))
            .collect();
        server.shutdown();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h
                .try_take()
                .unwrap_or_else(|| panic!("seed {seed}: job {i} lost its output at shutdown"))
                .expect("job completed");
            assert_eq!(out.records, expected.records, "seed {seed}: job {i}");
        }
    }
}

#[test]
fn shutdown_drains_every_queued_finalization() {
    let s = store();
    let reference = run_job(
        &Count(String::new()),
        &s,
        &ExecConfig {
            num_threads: 2,
            num_reducers: 4,
        ..ExecConfig::default()
        },
    );
    let server = SharedScanServer::new(s, 1, 2);
    let handles: Vec<_> = (0..5).map(|_| server.submit(Count(String::new()))).collect();
    // Shut down with every job still scanning: the coordinator completes
    // their revolutions, queues their finalizations, and the pools drain
    // before shutdown() returns.
    server.shutdown();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h
            .try_take()
            .unwrap_or_else(|| panic!("job {i} lost its output at shutdown"))
            .expect("job completed");
        assert_eq!(out.records, reference.records, "job {i}");
    }
}
