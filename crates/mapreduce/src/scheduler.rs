//! The scheduler plug-in interface.
//!
//! The engine drives a [`Scheduler`] through Hadoop-shaped hooks: job
//! arrivals, per-heartbeat task assignment (pull style — the engine asks on
//! behalf of a node with a free slot), task completions, and requested
//! timer wakeups. The scheduler reports job completion through the context;
//! the engine never guesses when a job is done, because only the scheduler
//! knows how a job was split and merged.

use crate::batch::BatchKey;
use crate::cost::CostModel;
use crate::job::{JobId, JobTable};
use crate::task::{MapTaskSpec, ReduceTaskSpec};
use crate::trace::TraceKind;
use s3_cluster::{ClusterTopology, NodeId, SlowdownSchedule};
use s3_dfs::Dfs;
use s3_sim::SimTime;

/// A scheduler-authored trace annotation: a decision (slot exclusion,
/// sub-job adjustment, ...) the engine turns into a [`crate::TraceEvent`]
/// at the current simulation time when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedNote {
    /// What kind of decision this was.
    pub kind: TraceKind,
    /// Node the decision concerns, if any.
    pub node: Option<NodeId>,
    /// Jobs the decision concerns, if any.
    pub jobs: Vec<JobId>,
    /// Batch the decision concerns, if any.
    pub batch: Option<BatchKey>,
}

/// Effects a scheduler wants the engine to apply after the current hook.
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    pub completed_jobs: Vec<JobId>,
    pub wakeups: Vec<SimTime>,
    pub notes: Vec<SchedNote>,
}

/// Read access to the simulated world plus an outbox for effects.
pub struct SchedCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Cluster topology.
    pub cluster: &'a ClusterTopology,
    /// Dynamic slowdown schedule (what *periodic slot checking* observes).
    pub slowdowns: &'a SlowdownSchedule,
    /// The block store.
    pub dfs: &'a Dfs,
    /// The timing model (schedulers may estimate durations).
    pub cost: &'a CostModel,
    /// Jobs that have arrived so far.
    pub jobs: &'a JobTable,
    pub(crate) outbox: &'a mut Outbox,
}

impl<'a> SchedCtx<'a> {
    /// Declare `job` finished (all of its work is done). The engine records
    /// the completion timestamp.
    pub fn complete_job(&mut self, job: JobId) {
        self.outbox.completed_jobs.push(job);
    }

    /// Ask for an [`Scheduler::on_wakeup`] call at absolute time `at`
    /// (clamped to now if in the past).
    pub fn request_wakeup(&mut self, at: SimTime) {
        self.outbox.wakeups.push(at.max(self.now));
    }

    /// Effective speed of `node` right now: static spec factor times the
    /// dynamic slowdown profile.
    pub fn effective_speed(&self, node: NodeId) -> f64 {
        let spec = self.cluster.node(node).spec.speed_factor;
        spec * self.slowdowns.factor_at(node, self.now)
    }

    /// Total concurrent map slots in the cluster — the paper's `m`.
    pub fn map_slots(&self) -> u32 {
        self.cluster.total_map_slots()
    }

    /// Record a scheduler decision in the trace (no-op when tracing is
    /// disabled). Timestamped at the current simulation time.
    pub fn note(&mut self, note: SchedNote) {
        self.outbox.notes.push(note);
    }

    /// Record that periodic slot checking excluded `node` as slow.
    pub fn note_slot_excluded(&mut self, node: NodeId) {
        self.note(SchedNote {
            kind: TraceKind::SlotExcluded,
            node: Some(node),
            jobs: Vec::new(),
            batch: None,
        });
    }

    /// Record that `node` passed its speed check again and was re-admitted.
    pub fn note_slot_readmitted(&mut self, node: NodeId) {
        self.note(SchedNote {
            kind: TraceKind::SlotReadmitted,
            node: Some(node),
            jobs: Vec::new(),
            batch: None,
        });
    }

    /// Record that a sub-job was dynamically resized from the healthy slot
    /// count when `batch` (merging `jobs`) was launched.
    pub fn note_subjob_adjusted(&mut self, batch: BatchKey, jobs: Vec<JobId>) {
        self.note(SchedNote {
            kind: TraceKind::SubJobAdjusted,
            node: None,
            jobs,
            batch: Some(batch),
        });
    }
}

/// A pluggable job scheduler (FIFO, MRShare, S³, ...).
pub trait Scheduler {
    /// Short name used in reports ("FIFO", "MRS1", "S3", ...).
    fn name(&self) -> String;

    /// A new job has been submitted.
    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId);

    /// `node` has a free map slot: return a map task for it, or `None`.
    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec>;

    /// `node` has a free reduce slot: return a reduce task, or `None`.
    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<ReduceTaskSpec>;

    /// A map task previously assigned has finished.
    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId, spec: &MapTaskSpec);

    /// A reduce task previously assigned has finished.
    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId, spec: &ReduceTaskSpec);

    /// A map attempt was lost (its TaskTracker died). The scheduler must
    /// arrange re-execution. The default implementation panics: schedulers
    /// that support failure injection override it.
    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, node: NodeId, _spec: &MapTaskSpec) {
        panic!("{}: map attempt lost on dead {node} but this scheduler does not handle failures",
               self.name());
    }

    /// A reduce attempt was lost. See [`Scheduler::on_map_failed`].
    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, node: NodeId, _spec: &ReduceTaskSpec) {
        panic!("{}: reduce attempt lost on dead {node} but this scheduler does not handle failures",
               self.name());
    }

    /// A wakeup requested through [`SchedCtx::request_wakeup`] fired.
    fn on_wakeup(&mut self, _ctx: &mut SchedCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_outbox_collects_effects() {
        let cluster = ClusterTopology::paper_cluster();
        let slowdowns = SlowdownSchedule::none();
        let dfs = Dfs::new();
        let cost = CostModel::deterministic();
        let jobs = JobTable::new();
        let mut outbox = Outbox::default();
        let mut ctx = SchedCtx {
            now: SimTime::from_secs(10),
            cluster: &cluster,
            slowdowns: &slowdowns,
            dfs: &dfs,
            cost: &cost,
            jobs: &jobs,
            outbox: &mut outbox,
        };
        ctx.complete_job(JobId(3));
        ctx.request_wakeup(SimTime::from_secs(5)); // past: clamped to now
        ctx.request_wakeup(SimTime::from_secs(20));
        ctx.note_slot_excluded(NodeId(4));
        ctx.note_slot_readmitted(NodeId(4));
        ctx.note_subjob_adjusted(BatchKey(9), vec![JobId(3)]);
        assert_eq!(ctx.map_slots(), 40);
        assert_eq!(ctx.effective_speed(NodeId(0)), 1.0);
        assert_eq!(outbox.completed_jobs, vec![JobId(3)]);
        assert_eq!(
            outbox.wakeups,
            vec![SimTime::from_secs(10), SimTime::from_secs(20)]
        );
        assert_eq!(outbox.notes.len(), 3);
        assert_eq!(outbox.notes[0].kind, TraceKind::SlotExcluded);
        assert_eq!(outbox.notes[0].node, Some(NodeId(4)));
        assert_eq!(outbox.notes[2].batch, Some(BatchKey(9)));
    }
}
