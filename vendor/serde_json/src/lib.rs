//! Offline vendored subset of `serde_json`, built on the collapsed
//! `Content` data model of the vendored `serde` crate.
//!
//! Provides exactly what this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], a dynamic [`Value`] with `&str`
//! indexing (auto-inserting on mutable access, like the real crate), and a
//! [`json!`] macro for literals, arrays, and flat objects.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// `Result` alias matching the real crate's signature.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Exact-integer-preserving JSON number.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// The number as `f64` (always possible in this subset).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::U(v) => v as f64,
            N::I(v) => v as f64,
            N::F(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

/// Dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null` (also the default).
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(Number(N::U(*v))),
            Content::I64(v) => Value::Number(Number(N::I(*v))),
            Content::F64(v) => Value::Number(Number(N::F(*v))),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number(N::U(v))) => Content::U64(*v),
            Value::Number(Number(N::I(v))) => Content::I64(*v),
            Value::Number(Number(N::F(v))) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, serde::Error> {
        Ok(Value::from_content(c))
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, like the real crate's `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        print_compact(&Value::to_content(self), &mut out);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys (and non-objects) index to `Null`, matching serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifies: `Null` becomes an object, missing keys are inserted
    /// as `Null` — so `v["a"]["b"] = x` works on fresh values.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            panic!("cannot index non-object value with a string key");
        };
        let pos = match entries.iter().position(|(k, _)| k == key) {
            Some(pos) => pos,
            None => {
                entries.push((key.to_string(), Value::Null));
                entries.len() - 1
            }
        };
        &mut entries[pos].1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $variant:ident as $as:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number(N::$variant(v as $as)))
            }
        }
    )*};
}

impl_value_from_int!(
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64, usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64, isize => I as i64
);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(N::F(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number(N::F(v as f64)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Build a [`Value`] from JSON-like syntax: literals, `[..]` arrays, and
/// `{"k": v, ..}` objects (nesting works through recursion on token trees).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn print_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json's lossy printers.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep whole floats recognizably floating-point across round-trips.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn print_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => print_f64(*v, out),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                print_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn print_pretty(c: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                print_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                print_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => print_compact(other, out),
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialize `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{} at line {line} column {col}", msg.into()))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are out of scope for this subset.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_content(&content).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let text = r#"{"a": 1, "b": [true, null, "x"], "c": -2.5}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["c"].as_f64(), Some(-2.5));
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn index_mut_auto_vivifies() {
        let mut v = Value::Null;
        v["a"]["b"] = json!(3);
        assert_eq!(v["a"]["b"].as_u64(), Some(3));
        v["a"]["b"] = json!([4, 4]);
        assert_eq!(v["a"]["b"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"kind": "dense", "n": 2, "spacing_s": 5.0});
        assert_eq!(v["kind"], "dense");
        assert_eq!(v["n"].as_u64(), Some(2));
        assert_eq!(v["spacing_s"].as_f64(), Some(5.0));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn string_value_compares_to_str() {
        let v: Value = from_str(r#"{"kind": "JobSubmitted"}"#).unwrap();
        assert_eq!(v["kind"], "JobSubmitted");
        assert!(v["missing"] == Value::Null);
    }

    #[test]
    fn floats_stay_floats_across_roundtrip() {
        let v = json!({"x": 5.0});
        let text = v.to_string();
        assert!(text.contains("5.0"), "got {text}");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["x"].as_f64(), Some(5.0));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"), "got:\n{pretty}");
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 1"), "got {err}");
    }
}
