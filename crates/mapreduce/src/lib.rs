#![warn(missing_docs)]

//! # s3-mapreduce — event-driven Hadoop-style MapReduce engine model
//!
//! This crate models the execution layer of Hadoop 0.20 closely enough to
//! study *scheduling*: heartbeat-driven task assignment, one-map-slot nodes,
//! data-local scans, shuffle, and per-(sub-)job submission overheads. It
//! runs on the deterministic event kernel from `s3-sim` over the topology
//! and block layout from `s3-cluster` / `s3-dfs`.
//!
//! The scheduler under study is a plug-in: implement [`Scheduler`] and hand
//! it to [`simulate`]. The FIFO, MRShare and S³ schedulers live in
//! `s3-core`; this crate only provides the machinery they share:
//!
//! - [`JobProfile`] / [`JobRequest`] — cost description of a MapReduce job
//!   (per-MB map CPU, output ratios, reduce counts) and its arrival time.
//! - [`CostModel`] — the timing model: scan, map, sort/spill, shuffle,
//!   reduce, startup and submission overheads.
//! - [`Batch`] — a *merged* unit of execution: a set of jobs sharing one
//!   scan over a set of blocks (a whole file for FIFO/MRShare, one segment
//!   for S³), with map/reduce progress tracking.
//! - [`simulate`] — the event loop producing [`RunMetrics`] (TET, ART,
//!   per-task summaries, I/O counters).

pub mod batch;
pub mod cost;
pub mod engine;
pub mod invariants;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod svg;
pub mod task;
pub mod trace;

pub use batch::{Batch, BatchKey};
pub use cost::CostModel;
pub use engine::{simulate, simulate_traced, EngineConfig, SimError, SpeculationConfig};
pub use job::{JobId, JobProfile, JobRequest, JobTable, Priority};
pub use invariants::{check_engine_events, InvariantChecker, Violation};
pub use metrics::{JobOutcome, RunMetrics};
pub use scheduler::{SchedCtx, SchedNote, Scheduler};
pub use task::{Locality, MapTaskSpec, ReduceTaskSpec};
pub use svg::{render_svg, SvgOptions};
pub use trace::{Trace, TraceEvent, TraceKind};
