//! End-to-end tests of the user-facing binaries (`repro`, `s3sim`,
//! `sweep`), driven as real subprocesses via the paths Cargo exports to
//! integration tests.

use std::process::Command;

fn bin(name: &str) -> Command {
    let path = match name {
        "repro" => env!("CARGO_BIN_EXE_repro"),
        "s3sim" => env!("CARGO_BIN_EXE_s3sim"),
        "sweep" => env!("CARGO_BIN_EXE_sweep"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(path)
}

fn stdout_of(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "{cmd:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn repro_table1_prints_paper_comparison() {
    let s = stdout_of(bin("repro").arg("table1"));
    assert!(s.contains("Table I"));
    assert!(s.contains("160 GB"));
    assert!(s.contains("~250 M"));
    assert!(s.contains("Processing time"));
}

#[test]
fn repro_examples_match_paper_numbers() {
    let s = stdout_of(bin("repro").arg("examples"));
    for needle in ["200", "140", "120", "110", "180", "100"] {
        assert!(s.contains(needle), "missing {needle} in:\n{s}");
    }
}

#[test]
fn repro_fig4a_normalizes_to_s3() {
    let s = stdout_of(bin("repro").arg("fig4a"));
    assert!(s.contains("Fig4(a)"));
    // S3 row is the base: both normalized columns are 1.00.
    let s3_line = s.lines().find(|l| l.starts_with("S3")).expect("S3 row");
    assert_eq!(s3_line.matches("1.00").count(), 2, "{s3_line}");
    for scheme in ["FIFO", "MRS1", "MRS2", "MRS3"] {
        assert!(s.contains(scheme), "missing {scheme}");
    }
}

#[test]
fn repro_csv_and_json_modes() {
    let csv = stdout_of(bin("repro").args(["fig4b", "--csv"]));
    assert!(csv.starts_with("scheme,tet_s,art_s"));
    assert_eq!(csv.lines().count(), 6, "header + 5 schedulers");

    let json = stdout_of(bin("repro").args(["fig3", "--json"]));
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["points"].as_array().expect("points").len(), 10);
}

#[test]
fn repro_svg_mode_emits_svg() {
    let svg = stdout_of(bin("repro").args(["fig4f", "--svg"]));
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
}

#[test]
fn repro_rejects_unknown_target() {
    let out = bin("repro").arg("fig9z").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn s3sim_template_roundtrips_through_run() {
    let dir = std::env::temp_dir().join(format!("s3sim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmp");
    let scen = dir.join("scen.json");

    let template = stdout_of(bin("s3sim").arg("template"));
    // Shrink the template to a quick config before running.
    let mut spec: serde_json::Value = serde_json::from_str(&template).expect("valid JSON");
    spec["cluster"]["racks"] = serde_json::json!([4, 4]);
    spec["dataset"]["gb_per_node"] = serde_json::json!(1);
    spec["dataset"]["block_mb"] = serde_json::json!(128);
    spec["arrivals"] = serde_json::json!({"kind": "dense", "n": 2, "spacing_s": 5.0});
    std::fs::write(&scen, spec.to_string()).expect("write scenario");

    let run = stdout_of(bin("s3sim").args(["run", scen.to_str().expect("utf8 path")]));
    assert!(run.contains("S3") && run.contains("FIFO"));
    assert!(run.contains("TET(s)"));

    let timeline = stdout_of(bin("s3sim").args([
        "timeline",
        scen.to_str().expect("utf8 path"),
        "0",
        "40",
    ]));
    assert!(timeline.contains("node0"));
    assert!(timeline.contains('M'), "busy map cells expected");

    let svg_path = dir.join("out.svg");
    stdout_of(bin("s3sim").args([
        "svg",
        scen.to_str().expect("utf8 path"),
        "0",
        svg_path.to_str().expect("utf8 path"),
    ]));
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));

    let trace_path = dir.join("trace.jsonl");
    stdout_of(bin("s3sim").args([
        "trace",
        scen.to_str().expect("utf8 path"),
        "0",
        trace_path.to_str().expect("utf8 path"),
    ]));
    let first = std::fs::read_to_string(&trace_path)
        .expect("trace written")
        .lines()
        .next()
        .expect("non-empty")
        .to_string();
    let ev: serde_json::Value = serde_json::from_str(&first).expect("event json");
    assert_eq!(ev["kind"], "JobSubmitted");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn s3sim_rejects_bad_input() {
    let out = bin("s3sim").arg("run").arg("/nonexistent.json").output().expect("runs");
    assert!(!out.status.success());
    let out = bin("s3sim").arg("bogus-subcommand").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn sweep_emits_one_csv_row_per_cell() {
    let s = stdout_of(bin("sweep").args([
        "--schedulers",
        "s3,fifo",
        "--blocks",
        "128",
        "--patterns",
        "dense",
        "--seeds",
        "1,2",
    ]));
    let lines: Vec<&str> = s.lines().collect();
    assert!(lines[0].starts_with("scheduler,profile,block_mb"));
    // 2 schedulers x 1 block x 1 pattern x 2 seeds = 4 rows.
    assert_eq!(lines.len(), 5, "{s}");
    assert!(lines.iter().skip(1).all(|l| l.contains(",128,dense,")));
}

#[test]
fn sweep_rejects_unknown_scheduler() {
    let out = bin("sweep")
        .args(["--schedulers", "nope"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
