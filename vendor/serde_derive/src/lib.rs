//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly on `proc_macro` token trees (the container has no
//! network access, so `syn`/`quote` are unavailable). Supports the shapes
//! this workspace uses:
//!
//! - named structs (with `#[serde(default)]` / `#[serde(default = "fn")]`
//!   field attributes; `Option<..>` fields are implicitly optional),
//! - newtype and tuple structs,
//! - enums: unit variants, newtype variants, struct variants; externally
//!   tagged by default or internally tagged via
//!   `#[serde(tag = "...")]`; `#[serde(rename_all = "kebab-case")]`,
//! - plain type parameters (`struct SpillRecord<K, V>`), which receive
//!   `Serialize`/`Deserialize` bounds.
//!
//! The generated impls target the collapsed `Content` data model of the
//! vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    default: Option<DefaultKind>,
}

#[derive(Debug, Clone)]
enum DefaultKind {
    Std,
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    /// Tuple fields: only the types, positionally.
    Tuple(Vec<String>),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    attrs: SerdeAttrs,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_serde_attr_tokens(tokens: Vec<TokenTree>, out: &mut SerdeAttrs) {
    // Tokens inside `#[serde( ... )]`: a comma-separated list of
    // `ident`, `ident = "literal"`.
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let mut value: Option<String> = None;
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (tokens.get(i + 1), tokens.get(i + 2))
        {
            if eq.as_char() == '=' {
                let text = lit.to_string();
                value = Some(text.trim_matches('"').to_string());
                i += 2;
            }
        }
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => out.rename_all = Some(v),
            ("tag", Some(v)) => out.tag = Some(v),
            ("default", Some(v)) => out.default = Some(DefaultKind::Path(v)),
            ("default", None) => out.default = Some(DefaultKind::Std),
            (other, _) => panic!("serde_derive (vendored): unsupported serde attribute `{other}`"),
        }
        i += 1;
        // Skip a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

/// Consume one `#[...]` attribute starting at `idx` (which points at `#`).
/// Returns the new index; records `#[serde(...)]` contents into `attrs`.
fn consume_attr(tokens: &[TokenTree], idx: usize, attrs: &mut SerdeAttrs) -> usize {
    debug_assert!(matches!(&tokens[idx], TokenTree::Punct(p) if p.as_char() == '#'));
    let TokenTree::Group(group) = &tokens[idx + 1] else {
        panic!("serde_derive (vendored): malformed attribute");
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    if let Some(TokenTree::Ident(name)) = inner.first() {
        if name.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_attr_tokens(args.stream().into_iter().collect(), attrs);
            }
        }
    }
    idx + 2
}

/// Skip any visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut idx: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(idx) {
        if id.to_string() == "pub" {
            idx += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(idx) {
                if g.delimiter() == Delimiter::Parenthesis {
                    idx += 1;
                }
            }
        }
    }
    idx
}

/// Collect tokens of a type until a top-level comma; returns (type-text,
/// next index). Tracks `<`/`>` depth so commas inside generics don't end
/// the field.
fn collect_type(tokens: &[TokenTree], mut idx: usize) -> (String, usize) {
    let mut depth: i32 = 0;
    let mut text = String::new();
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    break;
                }
                if c == '<' {
                    depth += 1;
                }
                if c == '>' {
                    depth -= 1;
                }
                text.push(c);
            }
            tt => {
                if !text.is_empty()
                    && !text.ends_with(['<', ':', '(', '[', '&', '\''])
                {
                    text.push(' ');
                }
                text.push_str(&tt.to_string());
            }
        }
        idx += 1;
    }
    (text, idx)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i = consume_attr(&tokens, i, &mut attrs);
        }
        i = skip_visibility(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde_derive (vendored): expected field name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        let (ty, next) = collect_type(&tokens, i);
        i = next;
        if i < tokens.len() {
            i += 1; // ','
        }
        fields.push(Field { name, ty, attrs });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut tys = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i = consume_attr(&tokens, i, &mut attrs);
        }
        i = skip_visibility(&tokens, i);
        let (ty, next) = collect_type(&tokens, i);
        i = next;
        if i < tokens.len() {
            i += 1; // ','
        }
        if !ty.is_empty() {
            tys.push(ty);
        }
    }
    tys
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i = consume_attr(&tokens, i, &mut attrs);
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde_derive (vendored): expected variant name");
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Parse the generics group after the item name; returns the type-parameter
/// idents and the index just past the closing `>`.
fn parse_generics(tokens: &[TokenTree], mut idx: usize) -> (Vec<String>, usize) {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(idx) else {
        return (params, idx);
    };
    if p.as_char() != '<' {
        return (params, idx);
    }
    idx += 1;
    let mut depth = 1i32;
    let mut at_param_start = true;
    while idx < tokens.len() && depth > 0 {
        match &tokens[idx] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => at_param_start = true,
                '\'' => {
                    // Lifetime: skip the following ident, stay before comma.
                    idx += 1;
                    at_param_start = false;
                }
                _ => at_param_start = false,
            },
            TokenTree::Ident(id) => {
                if at_param_start && depth == 1 {
                    let s = id.to_string();
                    if s == "const" {
                        panic!("serde_derive (vendored): const generics unsupported");
                    }
                    params.push(s);
                }
                at_param_start = false;
            }
            _ => at_param_start = false,
        }
        idx += 1;
    }
    (params, idx)
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = SerdeAttrs::default();
    let mut i = 0;
    while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
        i = consume_attr(&tokens, i, &mut attrs);
    }
    i = skip_visibility(&tokens, i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("serde_derive (vendored): expected struct/enum keyword");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive (vendored): expected item name");
    };
    let name = name.to_string();
    i += 1;
    let (generics, next) = parse_generics(&tokens, i);
    i = next;
    // Skip a where-clause (tokens until the body group / semicolon).
    let data = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                break if kw == "struct" {
                    Data::Struct(Fields::Named(parse_named_fields(g.stream())))
                } else {
                    Data::Enum(parse_variants(g.stream()))
                };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && kw == "struct" => {
                break Data::Struct(Fields::Tuple(parse_tuple_fields(g.stream())));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                break Data::Struct(Fields::Unit);
            }
            _ => i += 1,
        }
    };
    Item {
        name,
        generics,
        attrs,
        data,
    }
}

// ---------------------------------------------------------------------------
// Code generation helpers
// ---------------------------------------------------------------------------

fn rename_variant(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("kebab-case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('-');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        None => name.to_string(),
        Some(other) => panic!("serde_derive (vendored): unsupported rename_all rule `{other}`"),
    }
}

fn impl_header(trait_name: &str, item: &Item) -> String {
    if item.generics.is_empty() {
        format!("impl serde::{trait_name} for {} ", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> serde::{trait_name} for {}<{}> ",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn is_option_type(ty: &str) -> bool {
    let t = ty.trim_start_matches("std::option::").trim_start_matches("core::option::");
    t.starts_with("Option<") || t.starts_with("Option <")
}

/// Expression producing the default value for a missing field, or None if
/// the field is required.
fn missing_field_expr(field: &Field) -> Option<String> {
    match &field.attrs.default {
        Some(DefaultKind::Std) => Some("std::default::Default::default()".into()),
        Some(DefaultKind::Path(p)) => Some(format!("{p}()")),
        None if is_option_type(&field.ty) => Some("std::option::Option::None".into()),
        None => None,
    }
}

/// `key: <deserialize from map>` initializer for one named field, reading
/// from content expression `src` (which must be a `&Content` map).
fn named_field_init(owner: &str, field: &Field, src: &str) -> String {
    let name = &field.name;
    let on_missing = match missing_field_expr(field) {
        Some(expr) => expr,
        None => format!(
            "return std::result::Result::Err(serde::Error::missing_field(\"{owner}\", \"{name}\"))"
        ),
    };
    format!(
        "{name}: match {src}.get(\"{name}\") {{ \
            std::option::Option::Some(v) => serde::Deserialize::from_content(v)\
                .map_err(|e| e.in_segment(\"{name}\"))?, \
            std::option::Option::None => {on_missing}, \
         }}"
    )
}

/// Push `("name", content-of-field)` pairs for named fields of a struct or
/// struct variant into a `Vec` named `__m`, reading values bound as plain
/// identifiers (`prefix` = "self." for structs, "" for destructured
/// variants).
fn named_field_pushes(fields: &[Field], prefix: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "__m.push((std::string::String::from(\"{0}\"), \
                 serde::Serialize::to_content(&{prefix}{0})));",
                f.name
            )
        })
        .collect::<Vec<_>>()
        .join("\n        ")
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let body = match &item.data {
        Data::Struct(Fields::Named(fields)) => {
            let pushes = named_field_pushes(fields, "self.");
            format!(
                "let mut __m: std::vec::Vec<(std::string::String, serde::Content)> = \
                 std::vec::Vec::new();\n        {pushes}\n        serde::Content::Map(__m)"
            )
        }
        Data::Struct(Fields::Tuple(tys)) if tys.len() == 1 => {
            "serde::Serialize::to_content(&self.0)".to_string()
        }
        Data::Struct(Fields::Tuple(tys)) => {
            let elems: Vec<String> = (0..tys.len())
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Data::Struct(Fields::Unit) => "serde::Content::Null".to_string(),
        Data::Enum(variants) => {
            let rule = item.attrs.rename_all.as_deref();
            let tag = item.attrs.tag.as_deref();
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let wire = rename_variant(vname, rule);
                    match (&v.fields, tag) {
                        (Fields::Unit, None) => format!(
                            "{}::{vname} => serde::Content::Str(std::string::String::from(\"{wire}\")),",
                            item.name
                        ),
                        (Fields::Unit, Some(tag)) => format!(
                            "{}::{vname} => serde::Content::Map(vec![(std::string::String::from(\"{tag}\"), \
                             serde::Content::Str(std::string::String::from(\"{wire}\")))]),",
                            item.name
                        ),
                        (Fields::Named(fields), tag) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes = named_field_pushes(fields, "");
                            let head = match tag {
                                Some(tag) => format!(
                                    "__m.push((std::string::String::from(\"{tag}\"), \
                                     serde::Content::Str(std::string::String::from(\"{wire}\"))));"
                                ),
                                None => String::new(),
                            };
                            let map_expr = "serde::Content::Map(__m)";
                            let wrapped = match tag {
                                Some(_) => map_expr.to_string(),
                                None => format!(
                                    "serde::Content::Map(vec![(std::string::String::from(\"{wire}\"), {map_expr})])"
                                ),
                            };
                            format!(
                                "{}::{vname} {{ {} }} => {{ \
                                 let mut __m: std::vec::Vec<(std::string::String, serde::Content)> = std::vec::Vec::new(); \
                                 {head} {pushes} {wrapped} }},",
                                item.name,
                                binds.join(", ")
                            )
                        }
                        (Fields::Tuple(tys), None) if tys.len() == 1 => format!(
                            "{}::{vname}(__v0) => serde::Content::Map(vec![(\
                             std::string::String::from(\"{wire}\"), serde::Serialize::to_content(__v0))]),",
                            item.name
                        ),
                        (Fields::Tuple(tys), None) => {
                            let binds: Vec<String> =
                                (0..tys.len()).map(|i| format!("__v{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{}::{vname}({}) => serde::Content::Map(vec![(\
                                 std::string::String::from(\"{wire}\"), \
                                 serde::Content::Seq(vec![{}]))]),",
                                item.name,
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        (Fields::Tuple(_), Some(_)) => panic!(
                            "serde_derive (vendored): tuple variants cannot be internally tagged"
                        ),
                    }
                })
                .collect();
            format!("match self {{\n        {}\n        }}", arms.join("\n        "))
        }
    };
    format!(
        "{}{{\n    fn to_content(&self) -> serde::Content {{\n        {body}\n    }}\n}}\n",
        impl_header("Serialize", item)
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(name, f, "c"))
                .collect();
            format!(
                "match c {{\n            serde::Content::Map(_) => std::result::Result::Ok({name} {{ {} }}),\n            \
                 other => std::result::Result::Err(serde::Error::expected(\"an object\", other)),\n        }}",
                inits.join(", ")
            )
        }
        Data::Struct(Fields::Tuple(tys)) if tys.len() == 1 => format!(
            "std::result::Result::Ok({name}(serde::Deserialize::from_content(c)?))"
        ),
        Data::Struct(Fields::Tuple(tys)) => {
            let n = tys.len();
            let elems: Vec<String> = (0..n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_content(&items[{i}])\
                         .map_err(|e| e.in_segment(\"[{i}]\"))?"
                    )
                })
                .collect();
            format!(
                "match c {{\n            serde::Content::Seq(items) if items.len() == {n} => \
                 std::result::Result::Ok({name}({})),\n            \
                 other => std::result::Result::Err(serde::Error::expected(\"an array of length {n}\", other)),\n        }}",
                elems.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => format!("std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let rule = item.attrs.rename_all.as_deref();
            match item.attrs.tag.as_deref() {
                Some(tag) => {
                    // Internally tagged: read the tag, then the variant's
                    // fields from the same map.
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|v| {
                            let wire = rename_variant(&v.name, rule);
                            let vname = &v.name;
                            match &v.fields {
                                Fields::Unit => format!(
                                    "\"{wire}\" => std::result::Result::Ok({name}::{vname}),"
                                ),
                                Fields::Named(fields) => {
                                    let inits: Vec<String> = fields
                                        .iter()
                                        .map(|f| {
                                            named_field_init(
                                                &format!("{name}::{vname}"),
                                                f,
                                                "c",
                                            )
                                        })
                                        .collect();
                                    format!(
                                        "\"{wire}\" => std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                        inits.join(", ")
                                    )
                                }
                                Fields::Tuple(_) => panic!(
                                    "serde_derive (vendored): tuple variants cannot be internally tagged"
                                ),
                            }
                        })
                        .collect();
                    format!(
                        "let tag = match c.get(\"{tag}\") {{\n            \
                            std::option::Option::Some(serde::Content::Str(s)) => s.as_str(),\n            \
                            std::option::Option::Some(other) => return std::result::Result::Err(serde::Error::expected(\"a string tag\", other)),\n            \
                            std::option::Option::None => return std::result::Result::Err(serde::Error::missing_field(\"{name}\", \"{tag}\")),\n        }};\n        \
                        match tag {{\n            {}\n            other => std::result::Result::Err(serde::Error::new(\
                        format!(\"unknown variant `{{other}}` of {name}\"))),\n        }}",
                        arms.join("\n            ")
                    )
                }
                None => {
                    // Externally tagged: unit variants are plain strings;
                    // data variants are single-key maps.
                    let unit_arms: Vec<String> = variants
                        .iter()
                        .filter(|v| matches!(v.fields, Fields::Unit))
                        .map(|v| {
                            let wire = rename_variant(&v.name, rule);
                            format!(
                                "\"{wire}\" => std::result::Result::Ok({name}::{}),",
                                v.name
                            )
                        })
                        .collect();
                    let data_arms: Vec<String> = variants
                        .iter()
                        .filter(|v| !matches!(v.fields, Fields::Unit))
                        .map(|v| {
                            let wire = rename_variant(&v.name, rule);
                            let vname = &v.name;
                            match &v.fields {
                                Fields::Named(fields) => {
                                    let inits: Vec<String> = fields
                                        .iter()
                                        .map(|f| {
                                            named_field_init(
                                                &format!("{name}::{vname}"),
                                                f,
                                                "inner",
                                            )
                                        })
                                        .collect();
                                    format!(
                                        "\"{wire}\" => std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                        inits.join(", ")
                                    )
                                }
                                Fields::Tuple(tys) if tys.len() == 1 => format!(
                                    "\"{wire}\" => std::result::Result::Ok({name}::{vname}(\
                                     serde::Deserialize::from_content(inner)?)),"
                                ),
                                Fields::Tuple(tys) => {
                                    let n = tys.len();
                                    let elems: Vec<String> = (0..n)
                                        .map(|i| {
                                            format!(
                                                "serde::Deserialize::from_content(&items[{i}])?"
                                            )
                                        })
                                        .collect();
                                    format!(
                                        "\"{wire}\" => match inner {{ \
                                         serde::Content::Seq(items) if items.len() == {n} => \
                                         std::result::Result::Ok({name}::{vname}({})), \
                                         other => std::result::Result::Err(serde::Error::expected(\"an array of length {n}\", other)) }},",
                                        elems.join(", ")
                                    )
                                }
                                Fields::Unit => unreachable!(),
                            }
                        })
                        .collect();
                    format!(
                        "match c {{\n            \
                         serde::Content::Str(s) => match s.as_str() {{\n                {unit}\n                \
                            other => std::result::Result::Err(serde::Error::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n            }},\n            \
                         serde::Content::Map(entries) if entries.len() == 1 => {{\n                \
                            let (key, inner) = &entries[0];\n                \
                            match key.as_str() {{\n                {data}\n                    \
                                other => std::result::Result::Err(serde::Error::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n                }}\n            }},\n            \
                         other => std::result::Result::Err(serde::Error::expected(\"a variant of {name}\", other)),\n        }}",
                        unit = unit_arms.join("\n                "),
                        data = data_arms.join("\n                ")
                    )
                }
            }
        }
    };
    format!(
        "{}{{\n    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::Error> {{\n        \
         #[allow(unused_variables)] let _ = c;\n        {body}\n    }}\n}}\n",
        impl_header("Deserialize", item)
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive (vendored): generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive (vendored): generated Deserialize impl parses")
}
