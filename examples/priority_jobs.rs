//! Priority-aware S³ (the paper's future-work extension): a latency-
//! sensitive job arrives while nine background jobs saturate the shared
//! scan. Baseline S³ merges everyone; priority-aware S³ caps how many
//! low-priority jobs ride each sub-job, trimming the high-priority job's
//! waves.
//!
//! ```text
//! cargo run --release -p s3-bench --example priority_jobs
//! ```

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{PriorityPolicy, S3Config, S3Scheduler};
use s3_mapreduce::job::requests_with_priorities;
use s3_mapreduce::{simulate, CostModel, EngineConfig, Priority};
use s3_workloads::{paper_wordcount_file, wordcount_normal};

fn main() {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();

    // Nine background (low-priority) jobs trickling in, then one urgent job.
    let mut spec: Vec<(f64, Priority)> =
        (0..9).map(|i| (i as f64 * 10.0, Priority::Low)).collect();
    spec.push((95.0, Priority::High));
    let workload = requests_with_priorities(&profile, dataset.file, &spec);
    let high_id = workload
        .iter()
        .find(|r| r.priority == Priority::High)
        .expect("high-priority job present")
        .id;

    println!("nine low-priority wordcount jobs + one high-priority job at t=95s\n");
    println!(
        "{:<26} {:>12} {:>10} {:>10}",
        "configuration", "high resp(s)", "TET(s)", "ART(s)"
    );

    for (label, config) in [
        ("baseline S3 (oblivious)", S3Config::default()),
        (
            "priority-aware, cap 3",
            S3Config {
                priority_policy: Some(PriorityPolicy {
                    low_priority_width_cap: 3,
                }),
                ..S3Config::default()
            },
        ),
        (
            "priority-aware, cap 1",
            S3Config {
                priority_policy: Some(PriorityPolicy {
                    low_priority_width_cap: 1,
                }),
                ..S3Config::default()
            },
        ),
    ] {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            &mut S3Scheduler::new(config),
            &EngineConfig::default(),
        )
        .expect("simulation completes");
        let high = m
            .outcomes
            .iter()
            .find(|o| o.job == high_id)
            .expect("high job completed")
            .response()
            .as_secs_f64();
        println!(
            "{:<26} {:>12.1} {:>10.1} {:>10.1}",
            label,
            high,
            m.tet().as_secs_f64(),
            m.art().as_secs_f64()
        );
    }

    println!("\ntighter caps speed the urgent job; deferred low-priority jobs pick");
    println!("their missed segments up on the scan's next revolution, so every job");
    println!("still reads each block exactly once.");
}
