//! Text-table and JSON reporting for experiment results.

use crate::experiments::{ExamplesResult, Fig3Result, Fig4Result, Table1Result};
use std::fmt::Write as _;

/// Render a Figure 4 panel the way the paper plots it: normalized TET and
/// ART per scheduler (S³ = 1.00), with absolute seconds alongside.
pub fn fig4_table(r: &Fig4Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", r.label);
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>9} {:>9} {:>12} {:>12}",
        "scheme", "TET(s)", "ART(s)", "TET/S3", "ART/S3", "blocks_read", "MB_saved"
    );
    for (row, (name, tet_n, art_n)) in r.results.iter().zip(r.normalized()) {
        let _ = writeln!(
            out,
            "{:<8} {:>10.1} {:>10.1} {:>9.2} {:>9.2} {:>12} {:>12.0}",
            name, row.tet_s, row.art_s, tet_n, art_n, row.blocks_read, row.mb_saved
        );
    }
    out
}

/// Render Figure 3: absolute times and ratios against a single job.
pub fn fig3_table(r: &Fig3Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig3: cost of combined jobs (co-submitted, fully shared) ==");
    let _ = writeln!(
        out,
        "{:>3} {:>10} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "n", "TET(s)", "map(s)", "reduce(s)", "TET/1", "map/1", "red/1"
    );
    for p in &r.points {
        let (t, m, d) = r.overhead_at(p.n);
        let _ = writeln!(
            out,
            "{:>3} {:>10.1} {:>10.2} {:>12.2} {:>8.3} {:>8.3} {:>8.3}",
            p.n, p.tet_s, p.avg_map_s, p.avg_reduce_s, t, m, d
        );
    }
    out
}

/// Render Table I next to the paper's reported values.
pub fn table1_table(r: &Table1Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: wordcount details (normal workload) ==");
    let _ = writeln!(out, "{:<28} {:>16} {:>20}", "quantity", "measured", "paper");
    let rows: [(&str, String, &str); 6] = [
        (
            "Input size",
            format!("{:.0} GB", r.input_mb / 1024.0),
            "160 GB",
        ),
        (
            "Map output records",
            format!("{:.1} M", r.map_output_records / 1e6),
            "~250 M",
        ),
        (
            "Reduce output records",
            format!("{:.0} k", r.reduce_output_records / 1e3),
            "~60-80 k",
        ),
        (
            "Map output size",
            format!("{:.2} GB", r.map_output_mb / 1024.0),
            "~2.4 GB",
        ),
        (
            "Reduce output size",
            format!("{:.2} MB", r.reduce_output_mb),
            "~1.5 MB",
        ),
        (
            "Processing time (avg)",
            format!("{:.0} s", r.processing_time_s),
            "~240 s",
        ),
    ];
    for (name, measured, paper) in rows {
        let _ = writeln!(out, "{:<28} {:>16} {:>20}", name, measured, paper);
    }
    out
}

/// Render the Section III worked examples.
pub fn examples_table(r: &ExamplesResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Section III Examples 1-3 (closed form) ==");
    let _ = writeln!(
        out,
        "{:<28} {:<9} {:>8} {:>8}",
        "scenario", "scheme", "TET(s)", "ART(s)"
    );
    for (scenario, scheme, tet, art) in &r.rows {
        let _ = writeln!(out, "{:<28} {:<9} {:>8.0} {:>8.0}", scenario, scheme, tet, art);
    }
    out
}

/// Figure 3 as CSV (`n,tet_s,avg_map_s,avg_reduce_s,tet_ratio,map_ratio,reduce_ratio`).
pub fn fig3_csv(r: &Fig3Result) -> String {
    let mut out = String::from("n,tet_s,avg_map_s,avg_reduce_s,tet_ratio,map_ratio,reduce_ratio\n");
    for p in &r.points {
        let (t, m, d) = r.overhead_at(p.n);
        let _ = writeln!(
            out,
            "{},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.n, p.tet_s, p.avg_map_s, p.avg_reduce_s, t, m, d
        );
    }
    out
}

/// A Figure 4 panel as CSV
/// (`scheme,tet_s,art_s,tet_norm,art_norm,blocks_read,mb_saved`).
pub fn fig4_csv(r: &Fig4Result) -> String {
    let mut out = String::from("scheme,tet_s,art_s,tet_norm,art_norm,blocks_read,mb_saved\n");
    for (row, (name, tet_n, art_n)) in r.results.iter().zip(r.normalized()) {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.4},{:.4},{},{:.1}",
            name, row.tet_s, row.art_s, tet_n, art_n, row.blocks_read, row.mb_saved
        );
    }
    out
}

/// Render a Figure 4 panel as a grouped-bar SVG, normalized to S³ = 1.0 —
/// the visual form the paper plots. Pure string generation, no deps.
pub fn fig4_svg(r: &Fig4Result) -> String {
    let rows = r.normalized();
    let n = rows.len();
    let (w, h) = (640.0_f64, 360.0_f64);
    let (ml, mr, mt, mb) = (50.0, 10.0, 40.0, 50.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;
    let max_y = rows
        .iter()
        .flat_map(|(_, t, a)| [*t, *a])
        .fold(1.0_f64, f64::max)
        * 1.15;
    let y_of = |v: f64| mt + plot_h * (1.0 - v / max_y);
    let group_w = plot_w / n as f64;
    let bar_w = group_w * 0.32;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(
        s,
        r#"<text x="{ml}" y="20" font-size="14">{}</text>"#,
        r.label.replace('&', "&amp;").replace('<', "&lt;")
    );
    let _ = writeln!(
        s,
        r##"<text x="{}" y="20" fill="#4878a8">&#9632; TET/S3</text><text x="{}" y="20" fill="#d8841f">&#9632; ART/S3</text>"##,
        w - 220.0,
        w - 130.0
    );
    // Gridlines at 0.5 intervals.
    let mut grid = 0.0;
    while grid <= max_y {
        let y = y_of(grid);
        let _ = writeln!(
            s,
            r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/><text x="8" y="{:.1}" fill="#555">{grid:.1}</text>"##,
            w - mr,
            y + 4.0
        );
        grid += 0.5;
    }
    // Reference line at 1.0 (S3).
    let y1 = y_of(1.0);
    let _ = writeln!(
        s,
        r##"<line x1="{ml}" y1="{y1:.1}" x2="{:.1}" y2="{y1:.1}" stroke="#888" stroke-dasharray="4 3"/>"##,
        w - mr
    );
    for (i, (name, tet, art)) in rows.iter().enumerate() {
        let x0 = ml + i as f64 * group_w + group_w * 0.15;
        for (j, (v, color)) in [(tet, "#4878a8"), (art, "#d8841f")].iter().enumerate() {
            let x = x0 + j as f64 * bar_w;
            let y = y_of(**v);
            let _ = writeln!(
                s,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{:.1}" fill="{color}"/>"##,
                mt + plot_h - y
            );
            let _ = writeln!(
                s,
                r##"<text x="{:.1}" y="{:.1}" text-anchor="middle" fill="#333" font-size="10">{:.2}</text>"##,
                x + bar_w / 2.0,
                y - 3.0,
                v
            );
        }
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" text-anchor="middle">{name}</text>"##,
            x0 + bar_w,
            h - mb + 18.0
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Render every ablation as one combined report.
pub fn ablations_report(seed: u64) -> String {
    use crate::ablations;
    let mut out = String::new();

    let _ = writeln!(out, "== Ablation: sub-job granularity (waves per segment; sparse workload) ==");
    let _ = writeln!(out, "{:>6} {:>10} {:>10}", "waves", "TET(s)", "ART(s)");
    for p in ablations::segment_size_sweep(seed) {
        let _ = writeln!(out, "{:>6.0} {:>10.1} {:>10.1}", p.x, p.tet_s, p.art_s);
    }

    let _ = writeln!(out, "\n== Ablation: arrival-rate sweep (10 Poisson jobs; S3 vs single-batch MRShare) ==");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>11} {:>11}",
        "gap(s)", "S3 TET", "S3 ART", "MRS1 TET", "MRS1 ART"
    );
    for p in ablations::arrival_rate_sweep(seed) {
        let _ = writeln!(
            out,
            "{:>10.0} {:>10.1} {:>10.1} {:>11.1} {:>11.1}",
            p.mean_gap_s, p.s3.tet_s, p.s3.art_s, p.mrs1.tet_s, p.mrs1.art_s
        );
    }

    let _ = writeln!(out, "\n== Ablation: MRShare batch count (sparse workload) ==");
    let _ = writeln!(out, "{:>8} {:>10} {:>10}", "batches", "TET(s)", "ART(s)");
    for p in ablations::mrshare_batch_sweep(seed) {
        let _ = writeln!(out, "{:>8.0} {:>10.1} {:>10.1}", p.x, p.tet_s, p.art_s);
    }

    let _ = writeln!(out, "\n== Ablation: periodic slot checking under stragglers ==");
    let (off, on) = ablations::slot_checking_ablation(seed);
    let _ = writeln!(out, "{:<22} {:>10} {:>10}", "config", "TET(s)", "ART(s)");
    let _ = writeln!(out, "{:<22} {:>10.1} {:>10.1}", "slot checking OFF", off.tet_s, off.art_s);
    let _ = writeln!(out, "{:<22} {:>10.1} {:>10.1}", "slot checking ON", on.tet_s, on.art_s);

    let _ = writeln!(out, "\n== Extension: partial-utilization schedulers (Section II-B) ==");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>12}",
        "scheme", "TET(s)", "ART(s)", "blocks_read"
    );
    for p in ablations::partial_utilization_comparison(seed) {
        let _ = writeln!(
            out,
            "{:<10} {:>10.1} {:>10.1} {:>12}",
            p.name, p.tet_s, p.art_s, p.blocks_read
        );
    }

    let _ = writeln!(out, "\n== Ablation: block placement & replication (S3, two jobs) ==");
    let _ = writeln!(out, "{:<18} {:>10} {:>10}", "placement", "locality", "TET(s)");
    for p in ablations::placement_ablation(seed) {
        let _ = writeln!(
            out,
            "{:<18} {:>9.1}% {:>10.1}",
            p.name,
            100.0 * p.locality_rate,
            p.tet_s
        );
    }

    let _ = writeln!(out, "\n== Ablation: heartbeat interval (dense pattern, S3 vs MRS1) ==");
    let _ = writeln!(out, "{:>8} {:>10} {:>11}", "hb(s)", "S3 TET", "MRS1 TET");
    for p in ablations::heartbeat_sweep(seed) {
        let _ = writeln!(
            out,
            "{:>8.1} {:>10.1} {:>11.1}",
            p.heartbeat_s, p.s3_tet_s, p.mrs1_tet_s
        );
    }

    let _ = writeln!(out, "\n== Extension: speculative execution vs slot checking (stragglers) ==");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>9} {:>7} {:>8}",
        "config", "TET(s)", "backups", "wins", "wasted"
    );
    for r in ablations::speculation_ablation(seed) {
        let _ = writeln!(
            out,
            "{:<12} {:>10.1} {:>9} {:>7} {:>8}",
            r.name, r.tet_s, r.attempts, r.wins, r.wasted
        );
    }

    let _ = writeln!(out, "\n== Extension: priority-aware S3 (future work) ==");
    let (baseline, prioritized) = ablations::priority_ablation(seed);
    let _ = writeln!(
        out,
        "high-priority job response: baseline S3 {baseline:.1}s, priority-aware {prioritized:.1}s ({:.1}% faster)",
        100.0 * (baseline - prioritized) / baseline
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_examples, SchedulerResult};

    #[test]
    fn fig4_table_renders_all_rows() {
        let r = Fig4Result {
            label: "test".into(),
            results: vec![
                SchedulerResult {
                    name: "S3".into(),
                    tet_s: 100.0,
                    art_s: 50.0,
                    blocks_read: 10,
                    mb_saved: 640.0,
                },
                SchedulerResult {
                    name: "FIFO".into(),
                    tet_s: 220.0,
                    art_s: 125.0,
                    blocks_read: 20,
                    mb_saved: 0.0,
                },
            ],
        };
        let t = fig4_table(&r);
        assert!(t.contains("S3"));
        assert!(t.contains("FIFO"));
        assert!(t.contains("2.20"));
        assert!(t.contains("2.50"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = Fig4Result {
            label: "t".into(),
            results: vec![SchedulerResult {
                name: "S3".into(),
                tet_s: 100.0,
                art_s: 50.0,
                blocks_read: 10,
                mb_saved: 640.0,
            }],
        };
        let csv = fig4_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scheme,"));
        assert!(lines[1].starts_with("S3,100.000,50.000,1.0000,1.0000,10,640.0"));
    }

    #[test]
    fn fig4_svg_is_well_formed() {
        let r = Fig4Result {
            label: "panel".into(),
            results: vec![
                SchedulerResult {
                    name: "S3".into(),
                    tet_s: 100.0,
                    art_s: 50.0,
                    blocks_read: 1,
                    mb_saved: 0.0,
                },
                SchedulerResult {
                    name: "FIFO".into(),
                    tet_s: 220.0,
                    art_s: 125.0,
                    blocks_read: 2,
                    mb_saved: 0.0,
                },
            ],
        };
        let svg = fig4_svg(&r);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 4, "two bars per scheme");
        assert!(svg.contains("2.20") && svg.contains("2.50"), "bar labels");
        assert!(svg.contains("FIFO"));
    }

    #[test]
    fn examples_table_contains_paper_numbers() {
        let t = examples_table(&run_examples());
        // Example 1 FIFO row: TET 200, ART 140.
        assert!(t.contains("200"));
        assert!(t.contains("140"));
    }
}
