//! The simulation driver: Hadoop's heartbeat loop over the event kernel.
//!
//! Behavior modeled after Hadoop 0.20 as configured in the paper:
//!
//! - every TaskTracker heartbeats the master every `heartbeat_s` seconds
//!   (staggered so the 40 trackers do not beat in lockstep);
//! - on a heartbeat, a node with a free map slot is offered **one** map
//!   task and a node with a free reduce slot **one** reduce task;
//! - task durations come from the [`CostModel`], divided by the node's
//!   effective speed at assignment time and multiplied by lognormal noise;
//! - speculative execution is disabled (as in the paper's setup).

use crate::cost::CostModel;
use crate::job::{JobRequest, JobTable};
use crate::metrics::MetricsBuilder;
use crate::scheduler::{Outbox, SchedCtx, Scheduler};
use crate::task::{Locality, MapTaskSpec, ReduceTaskSpec};
use crate::trace::{Trace, TraceEvent, TraceKind};
use s3_cluster::{ClusterTopology, NodeId, SlowdownSchedule};
use s3_dfs::Dfs;
use s3_sim::{EventQueue, SimDuration, SimRng, SimTime};

use crate::metrics::RunMetrics;

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// RNG seed for task-duration noise.
    pub seed: u64,
    /// Abort if no task starts or finishes and no job arrives for this many
    /// simulated seconds while jobs are outstanding (deadlocked scheduler).
    pub stall_timeout_s: f64,
    /// Hadoop-style speculative map execution. The paper disables it
    /// (Section V-A); enable it to study how it interacts with the
    /// schedulers (see the straggler ablations).
    pub speculation: Option<SpeculationConfig>,
    /// TaskTracker failure injection: dead nodes stop heartbeating, their
    /// in-flight tasks are lost and re-executed elsewhere (the co-located
    /// DataNode survives, so their blocks stay readable remotely).
    pub failures: s3_cluster::FailureSchedule,
}

/// Speculative-execution policy: when a node's map slot would otherwise
/// idle, re-launch a running map task whose remaining time exceeds
/// `threshold` times the mean completed-map duration. The first attempt to
/// finish wins; the loser's completion is discarded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Remaining-time multiple of the mean map duration that marks a
    /// straggler (Hadoop's default heuristic is roughly 1.0x "progress far
    /// behind average").
    pub threshold: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig { threshold: 1.0 }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5353_5353, // "SSSS"
            stall_timeout_s: 3_600.0,
            speculation: None,
            failures: s3_cluster::FailureSchedule::none(),
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler stopped making progress with jobs outstanding.
    Stalled {
        /// Simulated time of the last progress.
        last_progress: SimTime,
        /// Jobs completed before the stall.
        completed: usize,
        /// Jobs submitted in total.
        submitted: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                last_progress,
                completed,
                submitted,
            } => write!(
                f,
                "scheduler stalled at {last_progress}: {completed}/{submitted} jobs completed"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug)]
enum Ev {
    Arrival(u32),
    Heartbeat(NodeId),
    MapDone { node: NodeId, slot: usize },
    ReduceDone { node: NodeId, slot: usize },
    Wakeup,
}

/// A map attempt occupying a slot.
struct RunningMap {
    spec: MapTaskSpec,
    /// Expected completion time (used by the speculation heuristic).
    ends: SimTime,
    /// Whether this is a speculative backup attempt.
    backup: bool,
}

struct NodeState {
    map_slots: Vec<Option<RunningMap>>,
    reduce_slots: Vec<Option<ReduceTaskSpec>>,
}

/// Identity of a map task across attempts.
type MapTaskId = (crate::batch::BatchKey, s3_dfs::BlockId);

/// Run `workload` under `scheduler` and return the measured metrics.
///
/// Jobs in `workload` must have dense ids `0..n` and non-decreasing submit
/// times; [`crate::job::requests_from_arrivals`] produces exactly that.
pub fn simulate(
    cluster: &ClusterTopology,
    slowdowns: &SlowdownSchedule,
    dfs: &Dfs,
    cost: &CostModel,
    workload: &[JobRequest],
    scheduler: &mut dyn Scheduler,
    config: &EngineConfig,
) -> Result<RunMetrics, SimError> {
    simulate_traced(cluster, slowdowns, dfs, cost, workload, scheduler, config, None)
        .map(|(metrics, _)| metrics)
}

/// Like [`simulate`], but additionally records a full execution trace when
/// `trace_into` is `Some` (pass `Some(Trace::new())` to start fresh).
/// Tracing a 10-job paper-scale run records a few hundred thousand events;
/// leave it off for sweeps.
#[allow(clippy::too_many_arguments)]
pub fn simulate_traced(
    cluster: &ClusterTopology,
    slowdowns: &SlowdownSchedule,
    dfs: &Dfs,
    cost: &CostModel,
    workload: &[JobRequest],
    scheduler: &mut dyn Scheduler,
    config: &EngineConfig,
    trace_into: Option<Trace>,
) -> Result<(RunMetrics, Trace), SimError> {
    let mut trace = trace_into;
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut table = JobTable::new();
    let mut outbox = Outbox::default();
    let mut metrics = MetricsBuilder {
        scheduler: scheduler.name(),
        ..Default::default()
    };

    // Prime arrivals and staggered heartbeats.
    for (i, req) in workload.iter().enumerate() {
        assert_eq!(req.id.0 as usize, i, "workload ids must be dense");
        q.schedule(req.submit, Ev::Arrival(i as u32));
    }
    let hb = SimDuration::from_secs_f64(cost.heartbeat_s);
    let n_nodes = cluster.num_nodes();
    for node in cluster.nodes() {
        let offset = hb.mul_f64((node.id.0 as f64 + 1.0) / n_nodes as f64);
        q.schedule(SimTime::ZERO + offset, Ev::Heartbeat(node.id));
    }

    let mut nodes: Vec<NodeState> = cluster
        .nodes()
        .iter()
        .map(|n| NodeState {
            map_slots: (0..n.spec.map_slots).map(|_| None).collect(),
            reduce_slots: (0..n.spec.reduce_slots).map(|_| None).collect(),
        })
        .collect();

    let mut completed = 0usize;
    let mut completion_seen = vec![false; workload.len()];
    let mut last_progress = SimTime::ZERO;
    let stall = SimDuration::from_secs_f64(config.stall_timeout_s);

    // Speculative-execution bookkeeping (only populated when enabled).
    let mut completed_tasks: std::collections::HashSet<MapTaskId> =
        std::collections::HashSet::new();
    let mut backup_launched: std::collections::HashSet<MapTaskId> =
        std::collections::HashSet::new();

    macro_rules! ctx {
        ($now:expr) => {
            SchedCtx {
                now: $now,
                cluster,
                slowdowns,
                dfs,
                cost,
                jobs: &table,
                outbox: &mut outbox,
            }
        };
    }

    while completed < workload.len() {
        let Some((now, ev)) = q.pop() else {
            // Calendar exhausted with jobs outstanding: impossible while
            // heartbeats recur, but defend anyway.
            return Err(SimError::Stalled {
                last_progress,
                completed,
                submitted: table.len(),
            });
        };

        match ev {
            Ev::Arrival(i) => {
                let req = workload[i as usize].clone();
                metrics.submissions.push((req.id, req.submit));
                table.arrive(req);
                let id = workload[i as usize].id;
                if let Some(t) = trace.as_mut() {
                    t.push(TraceEvent {
                        at: now,
                        kind: TraceKind::JobSubmitted,
                        node: None,
                        jobs: vec![id],
                        batch: None,
                        block: None,
                    });
                }
                let mut ctx = ctx!(now);
                scheduler.on_job_arrival(&mut ctx, id);
                last_progress = now;
            }
            Ev::Heartbeat(node_id) => {
                if !config.failures.is_alive(node_id, now) {
                    // Dead TaskTracker: no more heartbeats, no new work.
                    // Its in-flight tasks fail at their completion events.
                    continue;
                }
                q.schedule(now + hb, Ev::Heartbeat(node_id));
                // Stall detection: only meaningful when work is outstanding.
                if !table.is_empty()
                    && completed < table.len()
                    && now.saturating_since(last_progress) > stall
                {
                    return Err(SimError::Stalled {
                        last_progress,
                        completed,
                        submitted: table.len(),
                    });
                }

                let node = cluster.node(node_id);

                // Offer one free map slot.
                let free_map_slot = nodes[node_id.0 as usize]
                    .map_slots
                    .iter()
                    .position(Option::is_none);
                if let Some(slot) = free_map_slot {
                    let spec = {
                        let mut ctx = ctx!(now);
                        scheduler.assign_map(&mut ctx, node_id)
                    };
                    if let Some(spec) = spec {
                        let meta = dfs.block(spec.block);
                        let block_mb = meta.size_mb();
                        let profiles: Vec<_> =
                            spec.jobs.iter().map(|&j| &*table.get(j).profile).collect();
                        let nominal = cost.map_task_secs(
                            block_mb,
                            spec.locality,
                            &profiles,
                            &node.spec,
                            cluster.network(),
                        );
                        let speed =
                            node.spec.speed_factor * slowdowns.factor_at(node_id, now);
                        let noise = if cost.noise_sigma > 0.0 {
                            rng.noise_factor(cost.noise_sigma, cost.noise_limit)
                        } else {
                            1.0
                        };
                        let dur = SimDuration::from_secs_f64(nominal / speed * noise);
                        metrics.map_acc.push(dur.as_secs_f64());
                        metrics.blocks_read += 1;
                        metrics.mb_read += block_mb;
                        metrics.logical_mb_scanned += block_mb * spec.jobs.len() as f64;
                        match spec.locality {
                            Locality::NodeLocal => metrics.locality_counts.0 += 1,
                            Locality::RackLocal => metrics.locality_counts.1 += 1,
                            Locality::OffRack => metrics.locality_counts.2 += 1,
                        }
                        if let Some(t) = trace.as_mut() {
                            t.push(TraceEvent {
                                at: now,
                                kind: TraceKind::MapStart,
                                node: Some(node_id),
                                jobs: spec.jobs.clone(),
                                batch: Some(spec.batch),
                                block: Some(spec.block),
                            });
                        }
                        nodes[node_id.0 as usize].map_slots[slot] = Some(RunningMap {
                            spec,
                            ends: now + dur,
                            backup: false,
                        });
                        q.schedule(now + dur, Ev::MapDone {
                            node: node_id,
                            slot,
                        });
                        last_progress = now;
                    } else if let Some(spec_cfg) = config.speculation {
                        // No fresh work: consider a speculative backup for
                        // a straggling attempt elsewhere in the cluster.
                        let mean_map = metrics.map_acc.mean();
                        if mean_map > 0.0 {
                            let cutoff =
                                SimDuration::from_secs_f64(spec_cfg.threshold * mean_map);
                            let candidate: Option<MapTaskSpec> = nodes
                                .iter()
                                .flat_map(|n| n.map_slots.iter().flatten())
                                .filter(|r| {
                                    !r.backup
                                        && r.ends.saturating_since(now) > cutoff
                                        && !backup_launched
                                            .contains(&(r.spec.batch, r.spec.block))
                                        && !completed_tasks
                                            .contains(&(r.spec.batch, r.spec.block))
                                })
                                .max_by_key(|r| r.ends)
                                .map(|r| r.spec.clone());
                            if let Some(orig) = candidate {
                                backup_launched.insert((orig.batch, orig.block));
                                metrics.speculative_attempts += 1;
                                // The backup reads from wherever the block
                                // lives relative to *this* node.
                                let meta = dfs.block(orig.block);
                                let locality = if meta.is_local_to(node_id) {
                                    Locality::NodeLocal
                                } else if meta.replicas.iter().any(|&r| {
                                    cluster.rack_of(r) == cluster.rack_of(node_id)
                                }) {
                                    Locality::RackLocal
                                } else {
                                    Locality::OffRack
                                };
                                let spec = MapTaskSpec { locality, ..orig };
                                let block_mb = meta.size_mb();
                                let profiles: Vec<_> = spec
                                    .jobs
                                    .iter()
                                    .map(|&j| &*table.get(j).profile)
                                    .collect();
                                let nominal = cost.map_task_secs(
                                    block_mb,
                                    spec.locality,
                                    &profiles,
                                    &node.spec,
                                    cluster.network(),
                                );
                                let speed = node.spec.speed_factor
                                    * slowdowns.factor_at(node_id, now);
                                let noise = if cost.noise_sigma > 0.0 {
                                    rng.noise_factor(cost.noise_sigma, cost.noise_limit)
                                } else {
                                    1.0
                                };
                                let dur = SimDuration::from_secs_f64(nominal / speed * noise);
                                metrics.map_acc.push(dur.as_secs_f64());
                                metrics.blocks_read += 1;
                                metrics.mb_read += block_mb;
                                if let Some(t) = trace.as_mut() {
                                    t.push(TraceEvent {
                                        at: now,
                                        kind: TraceKind::MapStart,
                                        node: Some(node_id),
                                        jobs: spec.jobs.clone(),
                                        batch: Some(spec.batch),
                                        block: Some(spec.block),
                                    });
                                }
                                let state = &mut nodes[node_id.0 as usize];
                                state.map_slots[slot] = Some(RunningMap {
                                    spec,
                                    ends: now + dur,
                                    backup: true,
                                });
                                q.schedule(now + dur, Ev::MapDone {
                                    node: node_id,
                                    slot,
                                });
                                last_progress = now;
                            }
                        }
                    }
                }

                // Offer one free reduce slot.
                let free_reduce_slot = nodes[node_id.0 as usize]
                    .reduce_slots
                    .iter()
                    .position(Option::is_none);
                if let Some(slot) = free_reduce_slot {
                    let spec = {
                        let mut ctx = ctx!(now);
                        scheduler.assign_reduce(&mut ctx, node_id)
                    };
                    if let Some(spec) = spec {
                        let profiles: Vec<_> =
                            spec.jobs.iter().map(|&j| &*table.get(j).profile).collect();
                        let nominal = cost.reduce_task_secs(
                            &spec.shuffle_mb_per_job,
                            &profiles,
                            spec.unoverlapped_fraction,
                            &node.spec,
                            cluster.network(),
                        );
                        let speed =
                            node.spec.speed_factor * slowdowns.factor_at(node_id, now);
                        let noise = if cost.noise_sigma > 0.0 {
                            rng.noise_factor(cost.noise_sigma, cost.noise_limit)
                        } else {
                            1.0
                        };
                        let dur = SimDuration::from_secs_f64(nominal / speed * noise);
                        metrics.reduce_acc.push(dur.as_secs_f64());
                        if let Some(t) = trace.as_mut() {
                            t.push(TraceEvent {
                                at: now,
                                kind: TraceKind::ReduceStart,
                                node: Some(node_id),
                                jobs: spec.jobs.clone(),
                                batch: Some(spec.batch),
                                block: None,
                            });
                        }
                        nodes[node_id.0 as usize].reduce_slots[slot] = Some(spec);
                        q.schedule(now + dur, Ev::ReduceDone {
                            node: node_id,
                            slot,
                        });
                        last_progress = now;
                    }
                }
            }
            Ev::MapDone { node, slot } => {
                let running = nodes[node.0 as usize].map_slots[slot]
                    .take()
                    .expect("map completion for empty slot");
                let spec = running.spec;
                let task_id: MapTaskId = (spec.batch, spec.block);
                if completed_tasks.contains(&task_id) {
                    // A rival attempt already won; this one's work is
                    // discarded (the slot simply frees up).
                    metrics.speculative_wasted += 1;
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent {
                            at: now,
                            kind: TraceKind::MapEnd,
                            node: Some(node),
                            jobs: spec.jobs.clone(),
                            batch: Some(spec.batch),
                            block: Some(spec.block),
                        });
                    }
                } else if !config.failures.is_alive(node, now) {
                    // The node died while this attempt ran: the work is
                    // lost and the scheduler must re-execute it.
                    metrics.tasks_failed += 1;
                    backup_launched.remove(&task_id);
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent {
                            at: now,
                            kind: TraceKind::MapFailed,
                            node: Some(node),
                            jobs: spec.jobs.clone(),
                            batch: Some(spec.batch),
                            block: Some(spec.block),
                        });
                    }
                    let mut ctx = ctx!(now);
                    scheduler.on_map_failed(&mut ctx, node, &spec);
                } else {
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEvent {
                            at: now,
                            kind: TraceKind::MapEnd,
                            node: Some(node),
                            jobs: spec.jobs.clone(),
                            batch: Some(spec.batch),
                            block: Some(spec.block),
                        });
                    }
                    if config.speculation.is_some() {
                        completed_tasks.insert(task_id);
                        if running.backup {
                            metrics.speculative_wins += 1;
                        }
                    }
                    let mut ctx = ctx!(now);
                    scheduler.on_map_complete(&mut ctx, node, &spec);
                }
                last_progress = now;
            }
            Ev::ReduceDone { node, slot } => {
                let spec = nodes[node.0 as usize].reduce_slots[slot]
                    .take()
                    .expect("reduce completion for empty slot");
                let failed = !config.failures.is_alive(node, now);
                if let Some(t) = trace.as_mut() {
                    t.push(TraceEvent {
                        at: now,
                        kind: if failed {
                            TraceKind::ReduceFailed
                        } else {
                            TraceKind::ReduceEnd
                        },
                        node: Some(node),
                        jobs: spec.jobs.clone(),
                        batch: Some(spec.batch),
                        block: None,
                    });
                }
                let mut ctx = ctx!(now);
                if failed {
                    metrics.tasks_failed += 1;
                    scheduler.on_reduce_failed(&mut ctx, node, &spec);
                } else {
                    scheduler.on_reduce_complete(&mut ctx, node, &spec);
                }
                last_progress = now;
            }
            Ev::Wakeup => {
                let mut ctx = ctx!(now);
                scheduler.on_wakeup(&mut ctx);
            }
        }

        // Apply scheduler-requested effects. Notes first: a slot-exclusion
        // decision made while handling this event precedes any completion
        // it triggered.
        for note in outbox.notes.drain(..) {
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent {
                    at: now,
                    kind: note.kind,
                    node: note.node,
                    jobs: note.jobs,
                    batch: note.batch,
                    block: None,
                });
            }
        }
        for job in outbox.completed_jobs.drain(..) {
            let idx = job.0 as usize;
            assert!(
                !completion_seen[idx],
                "scheduler completed {job} twice"
            );
            completion_seen[idx] = true;
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent {
                    at: now,
                    kind: TraceKind::JobCompleted,
                    node: None,
                    jobs: vec![job],
                    batch: None,
                    block: None,
                });
            }
            metrics.completions.push((job, now));
            completed += 1;
            last_progress = now;
        }
        for at in outbox.wakeups.drain(..) {
            q.schedule(at, Ev::Wakeup);
        }
    }

    let end = q.now();
    Ok((metrics.finish(end), trace.unwrap_or_default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{requests_from_arrivals, JobId, JobProfile};
    use s3_dfs::{FileId, RoundRobinPlacement, MB};
    use std::sync::Arc;

    /// A trivially simple scheduler: completes each job on arrival without
    /// running any task. Exercises the arrival/outbox plumbing.
    struct NoopScheduler;
    impl Scheduler for NoopScheduler {
        fn name(&self) -> String {
            "noop".into()
        }
        fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
            ctx.complete_job(job);
        }
        fn assign_map(&mut self, _: &mut SchedCtx<'_>, _: NodeId) -> Option<MapTaskSpec> {
            None
        }
        fn assign_reduce(&mut self, _: &mut SchedCtx<'_>, _: NodeId) -> Option<ReduceTaskSpec> {
            None
        }
        fn on_map_complete(&mut self, _: &mut SchedCtx<'_>, _: NodeId, _: &MapTaskSpec) {}
        fn on_reduce_complete(&mut self, _: &mut SchedCtx<'_>, _: NodeId, _: &ReduceTaskSpec) {}
    }

    /// Never schedules anything: must trip the stall detector.
    struct DeadScheduler;
    impl Scheduler for DeadScheduler {
        fn name(&self) -> String {
            "dead".into()
        }
        fn on_job_arrival(&mut self, _: &mut SchedCtx<'_>, _: JobId) {}
        fn assign_map(&mut self, _: &mut SchedCtx<'_>, _: NodeId) -> Option<MapTaskSpec> {
            None
        }
        fn assign_reduce(&mut self, _: &mut SchedCtx<'_>, _: NodeId) -> Option<ReduceTaskSpec> {
            None
        }
        fn on_map_complete(&mut self, _: &mut SchedCtx<'_>, _: NodeId, _: &MapTaskSpec) {}
        fn on_reduce_complete(&mut self, _: &mut SchedCtx<'_>, _: NodeId, _: &ReduceTaskSpec) {}
    }

    fn world() -> (ClusterTopology, Dfs, FileId, Arc<JobProfile>) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                80 * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        let profile = Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        });
        (cluster, dfs, file, profile)
    }

    #[test]
    fn noop_scheduler_completes_all_jobs_at_arrival() {
        let (cluster, dfs, file, profile) = world();
        let workload = requests_from_arrivals(&profile, file, &[0.0, 10.0, 20.0]);
        let metrics = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut NoopScheduler,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(metrics.outcomes.len(), 3);
        assert_eq!(metrics.tet(), SimDuration::from_secs(20));
        assert_eq!(metrics.art(), SimDuration::ZERO);
        assert_eq!(metrics.blocks_read, 0);
    }

    #[test]
    fn dead_scheduler_stalls() {
        let (cluster, dfs, file, profile) = world();
        let workload = requests_from_arrivals(&profile, file, &[0.0]);
        let cfg = EngineConfig {
            stall_timeout_s: 50.0,
            ..EngineConfig::default()
        };
        let err = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            &mut DeadScheduler,
            &cfg,
        )
        .unwrap_err();
        match err {
            SimError::Stalled {
                completed,
                submitted,
                ..
            } => {
                assert_eq!(completed, 0);
                assert_eq!(submitted, 1);
            }
        }
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let (cluster, dfs, _file, _profile) = world();
        let metrics = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &[],
            &mut NoopScheduler,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(metrics.outcomes.is_empty());
    }
}
