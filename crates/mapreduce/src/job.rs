//! Jobs: cost profiles, arrival requests, and the runtime job table.

use s3_dfs::FileId;
use s3_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a submitted job, dense in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Cost description of a MapReduce job, independent of the file it reads.
///
/// The split between *shared* and *per-job* costs is the heart of shared
/// scanning: reading a block and iterating its records is paid **once** per
/// scan regardless of how many jobs are merged onto it (that part lives in
/// [`crate::CostModel`]), while the map function CPU and the map/reduce
/// output volumes below are paid **per job**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Human-readable label ("wordcount", "selection", ...).
    pub name: String,
    /// Per-job map function CPU seconds per input MB (pattern matching,
    /// counting, predicate evaluation, emit).
    pub map_cpu_s_per_mb: f64,
    /// Map output bytes per input byte for this job (intermediate data).
    pub map_output_ratio: f64,
    /// Map output records per input MB — only used for Table I reporting.
    pub map_output_records_per_mb: f64,
    /// Reduce CPU seconds per MB of this job's shuffle input.
    pub reduce_cpu_s_per_mb: f64,
    /// Reduce output bytes per shuffle input byte.
    pub reduce_output_ratio: f64,
    /// Number of reduce tasks this job requests (30 in the paper).
    pub num_reduce_tasks: u32,
}

impl JobProfile {
    /// Map output in MB produced by this job over `input_mb` of input.
    pub fn map_output_mb(&self, input_mb: f64) -> f64 {
        input_mb * self.map_output_ratio
    }

    /// Reduce output in MB given this job's total map output.
    pub fn reduce_output_mb(&self, map_output_mb: f64) -> f64 {
        map_output_mb * self.reduce_output_ratio
    }
}

/// Scheduling priority of a job. The paper's baseline S³ ignores priority;
/// the priority-aware extension (its future-work direction) serves higher
/// priorities first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Background work: may be deferred by the priority-aware scheduler.
    Low,
    /// Default.
    #[default]
    Normal,
    /// Latency-sensitive: always admitted to the next merged sub-job.
    High,
}

/// A job submission: which file to scan, with what profile, and when.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Job identity (must be dense: request `i` has id `i`).
    pub id: JobId,
    /// Cost profile (shared across requests via `Arc`).
    pub profile: Arc<JobProfile>,
    /// Input file to scan.
    pub file: FileId,
    /// Submission time.
    pub submit: SimTime,
    /// Scheduling priority (ignored by priority-oblivious schedulers).
    pub priority: Priority,
}

/// Runtime view of jobs that have arrived, available to schedulers.
#[derive(Debug, Default)]
pub struct JobTable {
    arrived: Vec<JobRequest>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Record an arrival. The engine calls this as submit times pass;
    /// tests and benchmarks may use it to stage a table directly.
    ///
    /// Arrivals must be delivered in non-decreasing submit-time order.
    pub fn arrive(&mut self, req: JobRequest) {
        debug_assert!(
            self.arrived.last().is_none_or(|r| r.submit <= req.submit),
            "arrivals must be delivered in time order"
        );
        self.arrived.push(req);
    }

    /// All jobs that have arrived so far, in arrival order.
    pub fn arrived(&self) -> &[JobRequest] {
        &self.arrived
    }

    /// Look up an arrived job.
    ///
    /// # Panics
    /// Panics if the job has not arrived yet.
    pub fn get(&self, id: JobId) -> &JobRequest {
        self.arrived
            .iter()
            .find(|r| r.id == id)
            .expect("job has not arrived")
    }

    /// Number of arrived jobs.
    pub fn len(&self) -> usize {
        self.arrived.len()
    }

    /// Whether no job has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.arrived.is_empty()
    }
}

/// Build a sequence of [`JobRequest`]s from one profile, one file, and a
/// list of arrival times (seconds). Ids are assigned densely in order.
pub fn requests_from_arrivals(
    profile: &Arc<JobProfile>,
    file: FileId,
    arrival_secs: &[f64],
) -> Vec<JobRequest> {
    let mut sorted: Vec<f64> = arrival_secs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN arrival time"));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &t)| JobRequest {
            id: JobId(i as u32),
            profile: Arc::clone(profile),
            file,
            submit: SimTime::from_secs_f64(t),
            priority: Priority::Normal,
        })
        .collect()
}

/// Like [`requests_from_arrivals`] but with an explicit priority per job
/// (parallel to `arrival_secs` **after sorting by time**).
pub fn requests_with_priorities(
    profile: &Arc<JobProfile>,
    file: FileId,
    arrivals: &[(f64, Priority)],
) -> Vec<JobRequest> {
    let mut sorted: Vec<(f64, Priority)> = arrivals.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN arrival time"));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &(t, priority))| JobRequest {
            id: JobId(i as u32),
            profile: Arc::clone(profile),
            file,
            submit: SimTime::from_secs_f64(t),
            priority,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Arc<JobProfile> {
        Arc::new(JobProfile {
            name: "t".into(),
            map_cpu_s_per_mb: 0.001,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1500.0,
            reduce_cpu_s_per_mb: 0.001,
            reduce_output_ratio: 0.001,
            num_reduce_tasks: 30,
        })
    }

    #[test]
    fn output_volume_helpers() {
        let p = profile();
        let mo = p.map_output_mb(160.0 * 1024.0);
        assert!((mo - 2457.6).abs() < 1e-9);
        assert!((p.reduce_output_mb(mo) - 2.4576).abs() < 1e-9);
    }

    #[test]
    fn requests_are_sorted_and_dense() {
        let reqs = requests_from_arrivals(&profile(), FileId(0), &[30.0, 0.0, 10.0]);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].submit, SimTime::ZERO);
        assert_eq!(reqs[1].submit, SimTime::from_secs(10));
        assert_eq!(reqs[2].id, JobId(2));
    }

    #[test]
    fn job_table_arrival_and_lookup() {
        let mut t = JobTable::new();
        assert!(t.is_empty());
        let reqs = requests_from_arrivals(&profile(), FileId(0), &[0.0, 5.0]);
        t.arrive(reqs[0].clone());
        t.arrive(reqs[1].clone());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(JobId(1)).submit, SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "not arrived")]
    fn missing_job_panics() {
        JobTable::new().get(JobId(0));
    }
}
