//! Periodic slot checking under stragglers (Section IV-D-1).
//!
//! Injects a transient 10x slowdown on five nodes mid-run and compares S³
//! with slot checking disabled (sub-jobs keep waiting on the slow nodes)
//! against S³ with slot checking + dynamic sub-job sizing (slow nodes are
//! excluded from the next round and the segment size shrinks to the
//! healthy slot count).
//!
//! ```text
//! cargo run --release -p s3-bench --example straggler_recovery
//! ```

use s3_cluster::{ClusterTopology, NodeId, SlowdownSchedule, SpeedProfile};
use s3_core::{S3Config, S3Scheduler, SubJobSizing};
use s3_mapreduce::{job::requests_from_arrivals, simulate, CostModel, EngineConfig};
use s3_sim::SimTime;
use s3_workloads::{paper_wordcount_file, wordcount_normal};

fn slowdowns() -> SlowdownSchedule {
    // Nodes 3, 11, 19, 27, 35 run at 10% speed between t=60s and t=600s.
    let mut s = SlowdownSchedule::none();
    for id in [3u32, 11, 19, 27, 35] {
        s.set(
            NodeId(id),
            SpeedProfile::slow_between(SimTime::from_secs(60), SimTime::from_secs(600), 0.1),
        );
    }
    s
}

fn run(config: S3Config) -> (f64, f64) {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = paper_wordcount_file(&cluster, 64);
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 60.0]);
    let metrics = simulate(
        &cluster,
        &slowdowns(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        &mut S3Scheduler::new(config),
        &EngineConfig::default(),
    )
    .expect("simulation completes");
    (metrics.tet().as_secs_f64(), metrics.art().as_secs_f64())
}

fn main() {
    println!("two wordcount jobs; 5 of 40 nodes drop to 10% speed for 9 minutes\n");

    let (tet_off, art_off) = run(S3Config {
        slot_check_period_s: None,
        ..S3Config::default()
    });
    let (tet_on, art_on) = run(S3Config {
        sizing: SubJobSizing::Dynamic { waves: 5 },
        slot_check_period_s: Some(10.0),
        slow_node_threshold: 0.5,
        ..S3Config::default()
    });

    println!("{:<34} {:>9} {:>9}", "configuration", "TET(s)", "ART(s)");
    println!(
        "{:<34} {:>9.1} {:>9.1}",
        "slot checking OFF (static waves)", tet_off, art_off
    );
    println!(
        "{:<34} {:>9.1} {:>9.1}",
        "slot checking ON  (dynamic)", tet_on, art_on
    );
    println!(
        "\nrecovery: TET {:.1}% faster, ART {:.1}% faster with periodic slot checking",
        100.0 * (tet_off - tet_on) / tet_off,
        100.0 * (art_off - art_on) / art_off
    );
}
