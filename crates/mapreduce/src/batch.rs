//! Batches: merged units of execution shared by all schedulers.
//!
//! A [`Batch`] is a set of jobs sharing one scan over a set of blocks,
//! together with the bookkeeping to drive it through the engine:
//!
//! - FIFO uses one single-job batch per job covering the whole file;
//! - MRShare uses one multi-job batch per job group covering the whole file;
//! - S³ uses one multi-job batch per *merged sub-job* covering one segment.
//!
//! The batch hands out data-local map tasks first (Hadoop's locality
//! preference), unlocks its reduce tasks when the last map finishes, and
//! reports completion when the last reduce finishes.

use crate::job::{JobId, JobTable};
use crate::task::{Locality, MapTaskSpec, ReduceTaskSpec};
use s3_cluster::{ClusterTopology, NodeId};
use s3_dfs::{BlockId, Dfs};
use s3_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Opaque identity of a batch, unique within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchKey(pub u64);

impl fmt::Display for BatchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch{}", self.0)
    }
}

/// Execution state of one merged batch.
#[derive(Debug, Clone)]
pub struct Batch {
    key: BatchKey,
    jobs: Vec<JobId>,
    ready_at: SimTime,

    // --- map side ---
    by_node: HashMap<NodeId, Vec<BlockId>>,
    any_order: Vec<BlockId>,
    taken: HashSet<BlockId>,
    running_maps: u32,
    maps_done: u32,
    total_maps: u32,

    // --- reduce side ---
    num_partitions: u32,
    next_partition: u32,
    running_reduces: u32,
    reduces_done: u32,
    /// Partitions whose attempt failed and must re-run.
    requeued_reduces: Vec<u32>,
    shuffle_mb_per_job: Vec<f64>, // per partition, parallel to `jobs`
    unoverlapped_fraction: f64,
}

impl Batch {
    /// Build a batch of `jobs` over `blocks`.
    ///
    /// `map_slots` is the cluster's concurrent map capacity; it determines
    /// the fraction of shuffle that cannot overlap the map phase (the last
    /// wave's share).
    ///
    /// # Panics
    /// Panics if `jobs` or `blocks` is empty.
    pub fn new(
        key: BatchKey,
        jobs: Vec<JobId>,
        blocks: &[BlockId],
        table: &JobTable,
        dfs: &Dfs,
        ready_at: SimTime,
        map_slots: u32,
    ) -> Self {
        assert!(!jobs.is_empty(), "batch needs at least one job");
        assert!(!blocks.is_empty(), "batch needs at least one block");

        let mut by_node: HashMap<NodeId, Vec<BlockId>> = HashMap::new();
        let mut total_mb = 0.0;
        for &b in blocks {
            let meta = dfs.block(b);
            total_mb += meta.size_mb();
            for &replica in &meta.replicas {
                by_node.entry(replica).or_default().push(b);
            }
        }

        let num_partitions = jobs
            .iter()
            .map(|&j| table.get(j).profile.num_reduce_tasks)
            .max()
            .expect("non-empty jobs");
        let shuffle_mb_per_job: Vec<f64> = jobs
            .iter()
            .map(|&j| {
                let out = table.get(j).profile.map_output_mb(total_mb);
                if num_partitions == 0 {
                    0.0
                } else {
                    out / num_partitions as f64
                }
            })
            .collect();

        let total_maps = blocks.len() as u32;
        let unoverlapped_fraction = if total_maps == 0 {
            1.0
        } else {
            (map_slots as f64 / total_maps as f64).min(1.0)
        };

        Batch {
            key,
            jobs,
            ready_at,
            by_node,
            any_order: blocks.to_vec(),
            taken: HashSet::with_capacity(blocks.len()),
            running_maps: 0,
            maps_done: 0,
            total_maps,
            num_partitions,
            next_partition: 0,
            running_reduces: 0,
            reduces_done: 0,
            requeued_reduces: Vec::new(),
            shuffle_mb_per_job,
            unoverlapped_fraction,
        }
    }

    /// This batch's key.
    pub fn key(&self) -> BatchKey {
        self.key
    }

    /// Jobs merged into this batch.
    pub fn jobs(&self) -> &[JobId] {
        &self.jobs
    }

    /// Earliest time any task of this batch may start (submission gate).
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Total number of map tasks.
    pub fn total_maps(&self) -> u32 {
        self.total_maps
    }

    /// Number of completed map tasks.
    pub fn maps_done(&self) -> u32 {
        self.maps_done
    }

    /// Number of map tasks currently running.
    pub fn running_maps(&self) -> u32 {
        self.running_maps
    }

    /// Number of map tasks not yet handed out.
    pub fn pending_maps(&self) -> u32 {
        self.total_maps - self.taken.len() as u32
    }

    /// Number of reduce tasks currently running.
    pub fn running_reduces(&self) -> u32 {
        self.running_reduces
    }

    /// Whether every map task has been handed out (they may still be
    /// running). FIFO uses this to admit the next job's maps.
    pub fn maps_exhausted(&self) -> bool {
        self.taken.len() as u32 == self.total_maps
    }

    /// Whether every map task has completed.
    pub fn maps_complete(&self) -> bool {
        self.maps_done == self.total_maps
    }

    /// Whether the whole batch (maps + reduces) has completed.
    pub fn is_complete(&self) -> bool {
        self.maps_complete() && self.reduces_done == self.num_partitions
    }

    /// Try to hand out a map task for `node` at time `now`, preferring a
    /// node-local block, then a rack-local one, then any remaining block.
    pub fn next_map_for(
        &mut self,
        node: NodeId,
        now: SimTime,
        dfs: &Dfs,
        cluster: &ClusterTopology,
    ) -> Option<MapTaskSpec> {
        if now < self.ready_at || self.maps_exhausted() {
            return None;
        }

        // Node-local first.
        if let Some(list) = self.by_node.get_mut(&node) {
            while let Some(b) = list.pop() {
                if self.taken.insert(b) {
                    self.running_maps += 1;
                    return Some(MapTaskSpec {
                        block: b,
                        jobs: self.jobs.clone(),
                        batch: self.key,
                        locality: Locality::NodeLocal,
                    });
                }
            }
        }

        // Otherwise any remaining block; classify rack vs off-rack.
        let rack = cluster.rack_of(node);
        while let Some(b) = self.any_order.pop() {
            if self.taken.insert(b) {
                self.running_maps += 1;
                let meta = dfs.block(b);
                let locality = if meta
                    .replicas
                    .iter()
                    .any(|&r| cluster.rack_of(r) == rack)
                {
                    Locality::RackLocal
                } else {
                    Locality::OffRack
                };
                return Some(MapTaskSpec {
                    block: b,
                    jobs: self.jobs.clone(),
                    batch: self.key,
                    locality,
                });
            }
        }
        None
    }

    /// Record a finished map task.
    ///
    /// # Panics
    /// Panics if no map of this batch is running.
    pub fn on_map_done(&mut self) {
        assert!(self.running_maps > 0, "no running map to complete");
        self.running_maps -= 1;
        self.maps_done += 1;
    }

    /// A map attempt was lost (its node died): put the block back so any
    /// surviving node can re-execute it.
    ///
    /// # Panics
    /// Panics if no map of this batch is running or the block was never
    /// handed out.
    pub fn requeue_map(&mut self, block: BlockId) {
        assert!(self.running_maps > 0, "no running map to fail");
        assert!(self.taken.remove(&block), "block was not outstanding");
        self.running_maps -= 1;
        self.any_order.push(block);
    }

    /// A reduce attempt was lost: re-run its partition.
    ///
    /// # Panics
    /// Panics if no reduce of this batch is running.
    pub fn requeue_reduce(&mut self, partition: u32) {
        assert!(self.running_reduces > 0, "no running reduce to fail");
        assert!(partition < self.num_partitions, "unknown partition");
        self.running_reduces -= 1;
        self.requeued_reduces.push(partition);
    }

    /// Try to hand out the next reduce task. Reduces only become available
    /// once all maps have completed.
    pub fn next_reduce(&mut self, now: SimTime) -> Option<ReduceTaskSpec> {
        if now < self.ready_at || !self.maps_complete() {
            return None;
        }
        // Failed partitions re-run before fresh ones are handed out.
        let partition = if let Some(p) = self.requeued_reduces.pop() {
            p
        } else if self.next_partition < self.num_partitions {
            let p = self.next_partition;
            self.next_partition += 1;
            p
        } else {
            return None;
        };
        self.running_reduces += 1;
        Some(ReduceTaskSpec {
            jobs: self.jobs.clone(),
            partition,
            shuffle_mb_per_job: self.shuffle_mb_per_job.clone(),
            unoverlapped_fraction: self.unoverlapped_fraction,
            batch: self.key,
        })
    }

    /// Record a finished reduce task; returns `true` when this completed
    /// the batch.
    ///
    /// # Panics
    /// Panics if no reduce of this batch is running.
    pub fn on_reduce_done(&mut self) -> bool {
        assert!(self.running_reduces > 0, "no running reduce to complete");
        self.running_reduces -= 1;
        self.reduces_done += 1;
        self.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{requests_from_arrivals, JobProfile};
    use s3_dfs::{RoundRobinPlacement, FileId, MB};
    use std::sync::Arc;

    fn setup(num_blocks: u64) -> (ClusterTopology, Dfs, JobTable, FileId) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                num_blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        let profile = Arc::new(JobProfile {
            name: "wc".into(),
            map_cpu_s_per_mb: 0.0015,
            map_output_ratio: 0.015,
            map_output_records_per_mb: 1526.0,
            reduce_cpu_s_per_mb: 0.02,
            reduce_output_ratio: 0.000625,
            num_reduce_tasks: 30,
        });
        let reqs = requests_from_arrivals(&profile, file, &[0.0, 5.0]);
        let mut table = JobTable::new();
        for r in reqs {
            table.arrive(r);
        }
        (cluster, dfs, table, file)
    }

    fn batch_over_all(
        dfs: &Dfs,
        table: &JobTable,
        file: FileId,
        jobs: Vec<JobId>,
    ) -> Batch {
        let blocks: Vec<BlockId> = dfs.file(file).blocks.clone();
        Batch::new(BatchKey(0), jobs, &blocks, table, dfs, SimTime::ZERO, 40)
    }

    #[test]
    fn hands_out_local_blocks_first() {
        let (cluster, dfs, table, file) = setup(80);
        let mut b = batch_over_all(&dfs, &table, file, vec![JobId(0)]);
        // Node 5 holds blocks 5 and 45 (round-robin striping over 40 nodes).
        let spec = b
            .next_map_for(NodeId(5), SimTime::ZERO, &dfs, &cluster)
            .unwrap();
        assert_eq!(spec.locality, Locality::NodeLocal);
        let idx = dfs.block(spec.block).index_in_file;
        assert!(idx == 5 || idx == 45);
    }

    #[test]
    fn falls_back_to_remote_blocks() {
        let (cluster, dfs, table, file) = setup(1);
        // Single block lives on node 0; node 1 (same rack) must get it
        // rack-locally, and only once.
        let mut b = batch_over_all(&dfs, &table, file, vec![JobId(0)]);
        let spec = b
            .next_map_for(NodeId(1), SimTime::ZERO, &dfs, &cluster)
            .unwrap();
        assert_eq!(spec.locality, Locality::RackLocal);
        assert!(b
            .next_map_for(NodeId(2), SimTime::ZERO, &dfs, &cluster)
            .is_none());
    }

    #[test]
    fn off_rack_classification() {
        let (cluster, dfs, table, file) = setup(1);
        let mut b = batch_over_all(&dfs, &table, file, vec![JobId(0)]);
        // Node 39 is in rack 2; block 0 lives on node 0 in rack 0.
        let spec = b
            .next_map_for(NodeId(39), SimTime::ZERO, &dfs, &cluster)
            .unwrap();
        assert_eq!(spec.locality, Locality::OffRack);
    }

    #[test]
    fn respects_ready_gate() {
        let (cluster, dfs, table, file) = setup(4);
        let blocks: Vec<BlockId> = dfs.file(file).blocks.clone();
        let mut b = Batch::new(
            BatchKey(1),
            vec![JobId(0)],
            &blocks,
            &table,
            &dfs,
            SimTime::from_secs(10),
            40,
        );
        assert!(b
            .next_map_for(NodeId(0), SimTime::from_secs(9), &dfs, &cluster)
            .is_none());
        assert!(b
            .next_map_for(NodeId(0), SimTime::from_secs(10), &dfs, &cluster)
            .is_some());
    }

    #[test]
    fn lifecycle_maps_then_reduces_then_complete() {
        let (cluster, dfs, table, file) = setup(2);
        let mut b = batch_over_all(&dfs, &table, file, vec![JobId(0), JobId(1)]);
        assert_eq!(b.jobs().len(), 2);
        // No reduce before maps complete.
        assert!(b.next_reduce(SimTime::ZERO).is_none());
        let mut count = 0;
        for n in 0..40 {
            while b
                .next_map_for(NodeId(n), SimTime::ZERO, &dfs, &cluster)
                .is_some()
            {
                count += 1;
            }
        }
        assert_eq!(count, 2);
        assert!(b.maps_exhausted());
        assert!(!b.maps_complete());
        b.on_map_done();
        b.on_map_done();
        assert!(b.maps_complete());
        // 30 reduce partitions, each job contributing its share.
        let mut reduces = 0;
        while let Some(r) = b.next_reduce(SimTime::ZERO) {
            assert_eq!(r.jobs.len(), 2);
            assert_eq!(r.shuffle_mb_per_job.len(), 2);
            let expected = table.get(JobId(0)).profile.map_output_mb(128.0) / 30.0;
            assert!((r.shuffle_mb_per_job[0] - expected).abs() < 1e-9);
            reduces += 1;
        }
        assert_eq!(reduces, 30);
        for i in 0..30 {
            let done = b.on_reduce_done();
            assert_eq!(done, i == 29);
        }
        assert!(b.is_complete());
    }

    #[test]
    fn unoverlapped_fraction_is_last_wave_share() {
        let (_, dfs, table, file) = setup(80);
        let mut b = batch_over_all(&dfs, &table, file, vec![JobId(0)]);
        for _ in 0..80 {
            b.on_map_done_for_test();
        }
        let r = b.next_reduce(SimTime::ZERO).unwrap();
        assert!((r.unoverlapped_fraction - 0.5).abs() < 1e-9); // 40 slots / 80 maps
    }

    impl Batch {
        fn on_map_done_for_test(&mut self) {
            self.running_maps += 1;
            self.on_map_done();
        }
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_jobs_panics() {
        let (_, dfs, table, file) = setup(1);
        let blocks: Vec<BlockId> = dfs.file(file).blocks.clone();
        Batch::new(BatchKey(0), vec![], &blocks, &table, &dfs, SimTime::ZERO, 40);
    }
}
