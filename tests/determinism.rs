//! Reproducibility: every simulation is a pure function of
//! (workload, cluster, cost model, scheduler, seed).

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, RunMetrics, Scheduler,
};
use s3_workloads::{per_node_file, wordcount_normal};

fn run(scheduler: &mut dyn Scheduler, seed: u64) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "det", 1, 128);
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 40.0, 80.0]);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    )
    .expect("completes")
}

#[test]
fn identical_seeds_give_identical_runs() {
    for make in [
        || Box::new(S3Scheduler::default()) as Box<dyn Scheduler>,
        || Box::new(FifoScheduler::new()) as Box<dyn Scheduler>,
        || Box::new(MRShareScheduler::mrs2(3)) as Box<dyn Scheduler>,
    ] {
        let a = run(make().as_mut(), 7);
        let b = run(make().as_mut(), 7);
        assert_eq!(a.tet(), b.tet(), "{}", a.scheduler);
        assert_eq!(a.art(), b.art(), "{}", a.scheduler);
        assert_eq!(a.blocks_read, b.blocks_read);
        assert_eq!(a.locality_counts, b.locality_counts);
        let times_a: Vec<_> = a.outcomes.iter().map(|o| o.completed).collect();
        let times_b: Vec<_> = b.outcomes.iter().map(|o| o.completed).collect();
        assert_eq!(times_a, times_b, "{}", a.scheduler);
    }
}

#[test]
fn different_seeds_perturb_but_do_not_change_structure() {
    let a = run(&mut S3Scheduler::default(), 1);
    let b = run(&mut S3Scheduler::default(), 2);
    // Noise changes times...
    assert_ne!(a.tet(), b.tet());
    // ...but not what was scanned or completed.
    assert_eq!(a.blocks_read, b.blocks_read);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    // And the perturbation is small (sigma = 4%, clamped).
    let rel = (a.tet().as_secs_f64() - b.tet().as_secs_f64()).abs() / a.tet().as_secs_f64();
    assert!(rel < 0.1, "seed sensitivity too large: {rel}");
}

#[test]
fn noise_free_model_is_seed_invariant() {
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "det0", 1, 128);
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 50.0]);
    let mut results = Vec::new();
    for seed in [1u64, 99, 12345] {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::deterministic(),
            &workload,
            &mut S3Scheduler::default(),
            &EngineConfig {
                seed,
                ..EngineConfig::default()
            },
        )
        .expect("completes");
        results.push((m.tet(), m.art()));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
