//! Simulated DFS datasets for each experiment.
//!
//! The paper stores 4 GB of text per node (160 GB total) for wordcount and
//! 10 GB of lineitem per node (400 GB total) for selection, replication
//! factor 1, striped so every node holds its own share — which round-robin
//! placement reproduces exactly.

use s3_cluster::ClusterTopology;
use s3_dfs::{Dfs, FileId, RoundRobinPlacement, MB};

/// A dataset bound to a simulated DFS.
#[derive(Debug)]
pub struct Dataset {
    /// The store holding the file.
    pub dfs: Dfs,
    /// The input file.
    pub file: FileId,
    /// Block size used, bytes.
    pub block_size: u64,
}

impl Dataset {
    /// Number of blocks in the input file.
    pub fn num_blocks(&self) -> u32 {
        self.dfs.file(self.file).num_blocks()
    }

    /// Total input size in MB.
    pub fn input_mb(&self) -> f64 {
        self.dfs.file(self.file).size_bytes as f64 / MB as f64
    }
}

/// Create a dataset of `gb_per_node` GB per cluster node at `block_mb` MB
/// blocks, striped round-robin (each node primarily holds its own share).
pub fn per_node_file(cluster: &ClusterTopology, name: &str, gb_per_node: u64, block_mb: u64) -> Dataset {
    per_node_file_with(
        cluster,
        name,
        gb_per_node,
        block_mb,
        1,
        &mut RoundRobinPlacement::default(),
    )
}

/// Like [`per_node_file`], but with an explicit replication factor and
/// placement policy (e.g. [`s3_dfs::RackAwarePlacement`] for HDFS-default
/// behaviour at replication 3).
pub fn per_node_file_with(
    cluster: &ClusterTopology,
    name: &str,
    gb_per_node: u64,
    block_mb: u64,
    replication: u32,
    policy: &mut dyn s3_dfs::PlacementPolicy,
) -> Dataset {
    assert!(gb_per_node > 0 && block_mb > 0, "sizes must be positive");
    let total_bytes = gb_per_node * 1024 * MB * cluster.num_nodes() as u64;
    let block_size = block_mb * MB;
    let mut dfs = Dfs::new();
    let file = dfs
        .create_file(cluster, name, total_bytes, block_size, replication, policy)
        .expect("dataset creation cannot collide");
    Dataset {
        dfs,
        file,
        block_size,
    }
}

/// The 160 GB wordcount corpus (4 GB/node on the paper cluster).
pub fn paper_wordcount_file(cluster: &ClusterTopology, block_mb: u64) -> Dataset {
    per_node_file(cluster, "gutenberg", 4, block_mb)
}

/// The 400 GB lineitem table (10 GB/node on the paper cluster).
pub fn paper_lineitem_file(cluster: &ClusterTopology, block_mb: u64) -> Dataset {
    per_node_file(cluster, "lineitem", 10, block_mb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_dataset_geometry() {
        let cluster = ClusterTopology::paper_cluster();
        let d = paper_wordcount_file(&cluster, 64);
        assert_eq!(d.num_blocks(), 2560);
        assert_eq!(d.input_mb(), 160.0 * 1024.0);
        // 32 and 128 MB variants (Section V-F).
        assert_eq!(paper_wordcount_file(&cluster, 32).num_blocks(), 5120);
        assert_eq!(paper_wordcount_file(&cluster, 128).num_blocks(), 1280);
    }

    #[test]
    fn lineitem_dataset_geometry() {
        let cluster = ClusterTopology::paper_cluster();
        let d = paper_lineitem_file(&cluster, 64);
        assert_eq!(d.num_blocks(), 6400);
        assert_eq!(d.input_mb(), 400.0 * 1024.0);
    }

    #[test]
    fn replicated_dataset_places_distinct_replicas() {
        use rand::SeedableRng;
        let cluster = ClusterTopology::paper_cluster();
        let mut policy =
            s3_dfs::RackAwarePlacement::new(rand::rngs::SmallRng::seed_from_u64(7));
        let d = per_node_file_with(&cluster, "rep3", 1, 64, 3, &mut policy);
        for b in d.dfs.blocks_of(d.file) {
            assert_eq!(b.replicas.len(), 3);
            let mut reps = b.replicas.clone();
            reps.sort_unstable();
            reps.dedup();
            assert_eq!(reps.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn striping_gives_every_node_a_share() {
        let cluster = ClusterTopology::paper_cluster();
        let d = paper_wordcount_file(&cluster, 64);
        let mut per_node = vec![0u32; cluster.num_nodes()];
        for b in d.dfs.blocks_of(d.file) {
            per_node[b.replicas[0].0 as usize] += 1;
        }
        // 2560 blocks / 40 nodes = 64 each.
        assert!(per_node.iter().all(|&c| c == 64), "{per_node:?}");
    }
}
