//! Protocol-level stress tests for work-assisting block scheduling inside
//! segments: every block of every segment must be claimed off the cursor
//! exactly once and committed by exactly one winner — *provably*, from
//! the drained trace via `check_engine_events` — under seeded
//! interleaving pressure, panics mid-claim, worker exclusion mid-segment,
//! and dropped tasks, on both the assisting and the legacy deadline path.
//!
//! This is the adversarial counterpart to the byte-identity property
//! tests in `crates/engine/tests/properties.rs`: those prove the outputs,
//! these prove the claim protocol that produces them.

use s3_engine::{
    run_job, BlockStore, EngineChaosConfig, EngineFault, ExecConfig, FaultPlan, FtConfig, Obs,
    ServerConfig, SharedScanServer,
};
use s3_mapreduce::check_engine_events;
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::collections::BTreeMap;
use std::time::Duration;

const PREFIXES: [&str; 4] = ["", "a", "be", "s"];

fn store() -> BlockStore {
    let text = TextGen::paper_like().generate(&mut SimRng::seed_from_u64(11), 40 << 10);
    BlockStore::from_text(&text, 1024)
}

fn solo(prefix: &str, s: &BlockStore) -> BTreeMap<String, i64> {
    run_job(
        &PatternWordCount::prefix(prefix),
        s,
        &ExecConfig {
            num_threads: 1,
            num_reducers: 4,
        ..ExecConfig::default()
        },
    )
    .records
}

/// `Ok(records)` or the panic message, per submitted job.
type Outcomes = Vec<Result<BTreeMap<String, i64>, String>>;

/// Run the server under `plan`, wait out every handle, and return
/// `(outcomes, obs)` where `outcomes[i]` is `Ok(records)` or the panic
/// message. Trace and metrics stay drainable from `obs`.
fn run_under_plan(s: &BlockStore, mut cfg: ServerConfig, plan: FaultPlan) -> (Outcomes, Obs) {
    cfg.obs = Obs::new();
    cfg.faults = Some(plan);
    let obs = cfg.obs.clone();
    let server = SharedScanServer::with_config(s.clone(), cfg);
    let handles = server.submit_all(
        PREFIXES
            .iter()
            .map(|p| PatternWordCount::prefix(*p))
            .collect(),
    );
    let outcomes = handles
        .into_iter()
        .map(|h| match h.wait() {
            Ok(out) => Ok(out.records),
            Err(e) => Err(e.to_string()),
        })
        .collect();
    server.shutdown();
    (outcomes, obs)
}

/// Drain the trace and assert every engine invariant holds — including
/// the exactly-once claim/commit accounting that `segment_claims`
/// records now make checkable.
fn assert_protocol_clean(obs: &Obs, ctx: &str) {
    let core = obs.core().expect("observed");
    let events = core.tracer.drain();
    assert_eq!(core.tracer.dropped(), 0, "{ctx}: trace dropped events");
    assert!(
        events.iter().any(|e| e.name == "segment_claims"),
        "{ctx}: no claims records in the trace"
    );
    let violations = check_engine_events(&events);
    assert!(violations.is_empty(), "{ctx}: {violations:?}");
}

/// Tentpole stress: 20 seeded chaos plans across thread counts 1..=8,
/// segment sizes {1, 2, 3, 5}, and both tail modes (assist / legacy
/// deadline speculation). Stragglers force long uncommitted tails (the
/// interleaving pressure), drops lose claimed blocks, and map panics kill
/// jobs mid-claim — and under all of it every block must be claimed and
/// committed exactly once, doomed jobs must quarantine, and survivors
/// must stay byte-identical to their solo runs.
#[test]
fn seeded_interleaving_stress() {
    let s = store();
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();

    for seed in 0u64..20 {
        let threads = 1 + (seed % 8) as usize;
        let bps = [1, 2, 3, 5][(seed / 8) as usize % 4];
        let assist = seed % 2 == 0;
        let num_segments = s.num_blocks().div_ceil(bps) as u64;
        let chaos = EngineChaosConfig {
            num_workers: threads,
            num_jobs: PREFIXES.len() as u64,
            horizon_iters: num_segments,
            num_shards: 4,
            min_slow: 1,
            max_slow: 2,
            max_drops: 2,
            max_map_panics: 2,
            max_reduce_faults: 0,
            coordinator_kill_prob: 0.0,
            slow_delay_us: (2_000, 8_000),
        };
        let plan = FaultPlan::generate(seed, &chaos);
        let doomed: Vec<bool> = (0..PREFIXES.len() as u64)
            .map(|j| {
                plan.faults.iter().any(
                    |f| matches!(f, EngineFault::PanicMap { job, .. } if *job == j),
                )
            })
            .collect();

        let mut cfg = ServerConfig::new(bps, threads);
        cfg.ft = FtConfig {
            assist,
            deadline_floor: Duration::from_millis(3),
            ..FtConfig::resilient()
        };
        let ctx = format!("seed {seed} threads {threads} bps {bps} assist {assist}");
        let (outcomes, obs) = run_under_plan(&s, cfg, plan);

        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Ok(records) => {
                    assert!(!doomed[i], "{ctx}: job {i} survived its armed panic");
                    assert_eq!(records, &references[i], "{ctx}: job {i} differs from solo");
                }
                Err(msg) => {
                    assert!(doomed[i], "{ctx}: job {i} failed unexpectedly: {msg}");
                    assert!(msg.contains("injected map panic"), "{ctx}: {msg}");
                }
            }
        }
        assert_protocol_clean(&obs, &ctx);

        let num_doomed = doomed.iter().filter(|d| **d).count() as u64;
        let snap = obs.snapshot().expect("observed");
        assert_eq!(snap.counter("engine.jobs_quarantined"), num_doomed, "{ctx}");
        assert_eq!(
            snap.counter("engine.jobs_completed"),
            PREFIXES.len() as u64 - num_doomed,
            "{ctx}"
        );
        assert_eq!(snap.counter("engine.jobs_aborted"), 0, "{ctx}");
    }
}

/// A job that panics mid-revolution dies while the claim cursor is live:
/// its quarantine must not disturb the segment accounting, and the three
/// co-riding jobs must finish exact.
#[test]
fn panic_mid_claim_commits_exactly_once() {
    let s = store();
    let num_segments = s.num_blocks().div_ceil(2) as u64;
    let reference: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();
    for assist in [false, true] {
        let mut cfg = ServerConfig::new(2, 4);
        cfg.ft = FtConfig {
            assist,
            deadline_floor: Duration::from_millis(3),
            ..FtConfig::resilient()
        };
        let plan = FaultPlan {
            faults: vec![EngineFault::PanicMap {
                job: 2,
                after_segments: num_segments / 2,
            }],
        };
        let ctx = format!("assist {assist}");
        let (outcomes, obs) = run_under_plan(&s, cfg, plan);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                let msg = outcome.as_ref().expect_err("job 2 is doomed");
                assert!(msg.contains("injected map panic"), "{ctx}: {msg}");
            } else {
                let records = outcome.as_ref().expect("survivor");
                assert_eq!(records, &reference[i], "{ctx}: job {i} differs from solo");
            }
        }
        assert_protocol_clean(&obs, &ctx);
    }
}

/// A persistent straggler gets excluded mid-run (threshold 1), shrinking
/// the worker set between — and, with the readmission window, *within* —
/// revolutions. Claims stay exactly-once and outputs exact throughout.
#[test]
fn exclusion_mid_segment_keeps_exactly_once() {
    let s = store();
    let num_segments = s.num_blocks().div_ceil(3) as u64;
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();
    for assist in [false, true] {
        let mut cfg = ServerConfig::new(3, 3);
        cfg.ft = FtConfig {
            assist,
            deadline_floor: Duration::from_millis(2),
            exclusion_threshold: 1,
            exclusion_window_iters: 4,
            ..FtConfig::resilient()
        };
        let plan = FaultPlan {
            faults: vec![EngineFault::SlowWorker {
                worker: 0,
                from_iter: 0,
                until_iter: num_segments,
                delay_us: 15_000,
            }],
        };
        let ctx = format!("assist {assist}");
        let (outcomes, obs) = run_under_plan(&s, cfg, plan);
        for (i, outcome) in outcomes.iter().enumerate() {
            let records = outcome.as_ref().expect("no job is doomed");
            assert_eq!(records, &references[i], "{ctx}: job {i} differs from solo");
        }
        assert_protocol_clean(&obs, &ctx);
        let snap = obs.snapshot().expect("observed");
        assert!(
            snap.counter("engine.workers_excluded") >= 1,
            "{ctx}: the straggler was never excluded"
        );
    }
}

/// A dropped (never-committed) block with a deadline far beyond the run's
/// lifetime: legacy speculation could only recover it by waiting out the
/// deadline, so recovery here proves the assisting tail re-executed it
/// immediately — and the win shows up in `engine.blocks_assisted`.
///
/// Runs with a single worker on purpose. It makes the drops
/// deterministic (with multiple workers and microsecond blocks, one
/// worker can drain every claim before its rivals even wake, so a drop
/// armed on another worker never fires) and it pins the strongest assist
/// property: the dropping worker *re-claims its own lost block from the
/// tail*, which the legacy path could only do after the deadline expired.
#[test]
fn dropped_block_recovers_through_assist_not_deadlines() {
    let s = store();
    let references: Vec<_> = PREFIXES.iter().map(|p| solo(p, &s)).collect();
    let mut cfg = ServerConfig::new(4, 1);
    cfg.ft = FtConfig {
        assist: true,
        // No deadline can expire within the test: only assist recovers.
        deadline_floor: Duration::from_secs(600),
        deadline_slack: 1e9,
        ..FtConfig::resilient()
    };
    let plan = FaultPlan {
        faults: vec![
            EngineFault::DropTask {
                worker: 0,
                at_iter: 1,
            },
            EngineFault::DropTask {
                worker: 0,
                at_iter: 3,
            },
        ],
    };
    let (outcomes, obs) = run_under_plan(&s, cfg, plan);
    for (i, outcome) in outcomes.iter().enumerate() {
        let records = outcome.as_ref().expect("no job is doomed");
        assert_eq!(records, &references[i], "job {i} differs from solo");
    }
    assert_protocol_clean(&obs, "dropped-block assist");
    let snap = obs.snapshot().expect("observed");
    assert_eq!(
        snap.counter("engine.blocks_assisted"),
        2,
        "both dropped blocks must be recovered by assists, not deadlines"
    );
}
