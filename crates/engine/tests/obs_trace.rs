//! Trace completeness and metrics/trace agreement for the observed engine.
//!
//! The telemetry contract: every submitted job reaches a terminal
//! `job_done` event, admission happens exactly once per job, the trace's
//! segment spans agree with the server's iteration counter, and the
//! metrics registry totals agree with the server's own counters.

use s3_engine::{BlockStore, MapReduceJob, Obs, SharedScanServer};
use s3_obs::chrome::{engine_event_to_chrome, validate_chrome_trace, write_chrome_trace, ChromeEvent};
use s3_obs::trace::{Event, Phase, NO_ID};

struct Count;
impl MapReduceJob for Count {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            emit(w.into(), 1);
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        true
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
}

fn store() -> BlockStore {
    let text = "alpha beta alpha\nbeta gamma delta alpha\ngamma beta\n".repeat(1500);
    BlockStore::from_text(&text, 2048)
}

fn named<'a>(events: &'a [Event], name: &str) -> Vec<&'a Event> {
    events.iter().filter(|e| e.name == name).collect()
}

#[test]
fn every_submitted_job_reaches_a_terminal_event() {
    const JOBS: usize = 5;
    let obs = Obs::new();
    let server = SharedScanServer::new_observed(store(), 2, 3, &obs);
    let handles: Vec<_> = (0..JOBS).map(|_| server.submit(Count)).collect();
    for h in handles {
        h.wait().expect("job completed");
    }
    let iterations = server.iterations();
    let blocks_scanned = server.blocks_scanned();
    server.shutdown();

    let events = obs.core().expect("on").tracer.drain();
    assert_eq!(
        obs.core().expect("on").tracer.dropped(),
        0,
        "this workload must fit the rings"
    );

    // Every submit has exactly one admission and one terminal job_done,
    // carrying the same job id.
    let submits = named(&events, "submit");
    assert_eq!(submits.len(), JOBS);
    for s in &submits {
        let id = s.ids.job;
        assert_ne!(id, NO_ID);
        let admits: Vec<_> = named(&events, "admit")
            .into_iter()
            .filter(|e| e.ids.job == id)
            .collect();
        assert_eq!(admits.len(), 1, "job {id} admitted exactly once");
        let done: Vec<_> = named(&events, "job_done")
            .into_iter()
            .filter(|e| e.ids.job == id)
            .collect();
        assert_eq!(done.len(), 1, "job {id} reaches exactly one terminal event");
        assert!(
            done[0].ts_us >= s.ts_us,
            "terminal event follows submission"
        );
    }

    // Segment spans agree with the server's iteration counter, and every
    // span is well-formed. A segment span's ids carry the block range it
    // scanned — `seg` is the starting block, `n` the block count — so the
    // resize invariant in `s3-mapreduce::invariants` can re-derive the
    // partition; a scanned segment always covers at least one block.
    let segments = named(&events, "segment");
    assert_eq!(segments.len() as u64, iterations);
    for seg in &segments {
        assert_eq!(seg.ph, Phase::Span);
        assert_ne!(seg.ids.seg, NO_ID);
        assert!(seg.ids.n >= 1, "a scanned segment covers at least one block");
    }

    // Metrics totals agree with the server's own counters.
    let snap = obs.snapshot().expect("on");
    assert_eq!(snap.counters["engine.jobs_submitted"], JOBS as u64);
    assert_eq!(snap.counters["engine.jobs_completed"], JOBS as u64);
    assert_eq!(snap.counters["engine.segments_scanned"], iterations);
    assert_eq!(snap.counters["engine.blocks_scanned"], blocks_scanned);
    assert_eq!(snap.histograms["engine.admission_latency_us"].count, JOBS as u64);
    assert_eq!(snap.histograms["engine.job_latency_us"].count, JOBS as u64);
    assert!(snap.counters["engine.map_records"] > 0);
    assert!(
        snap.counters["engine.combiner_fold_hits"] > 0,
        "a fold-combiner wordcount folds repeats"
    );
    assert_eq!(snap.gauges["engine.active_jobs"], 0, "all jobs drained");

    // The server's named pools export panic counters; a healthy run has
    // zero panicked tasks and zero quarantined jobs.
    assert_eq!(snap.counter("pool.scan.tasks_panicked"), 0);
    assert_eq!(snap.counter("pool.reduce.tasks_panicked"), 0);
    assert_eq!(snap.counter("engine.jobs_quarantined"), 0);
    assert_eq!(snap.counter("engine.jobs_aborted"), 0);

    // The drained trace exports to a schema-valid Chrome trace.
    let mut chrome = vec![ChromeEvent::process_name(1, "s3-engine")];
    chrome.extend(events.iter().map(|e| engine_event_to_chrome(e, 1, "engine")));
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &chrome).expect("serialize");
    let n = validate_chrome_trace(std::str::from_utf8(&buf).expect("utf8")).expect("valid");
    assert_eq!(n, chrome.len());
}

#[test]
fn unobserved_server_records_nothing_and_costs_no_instruments() {
    let obs = Obs::off();
    let server = SharedScanServer::new_observed(store(), 2, 2, &obs);
    server.submit(Count).wait().expect("job completed");
    server.shutdown();
    assert!(obs.snapshot().is_none(), "Obs::off has no registry");
}

#[test]
fn observed_run_job_records_phase_spans_and_counters() {
    let obs = Obs::new();
    let pool = s3_engine::WorkerPool::new_observed(2, "t", &obs);
    let s = store();
    let out = s3_engine::run_job_observed(
        &pool,
        &Count,
        &s,
        &s3_engine::ExecConfig {
            num_threads: 2,
            num_reducers: 4,
        ..s3_engine::ExecConfig::default()
        },
        &obs,
    );
    let snap = obs.snapshot().expect("on");
    assert_eq!(snap.counters["engine.map_records"], out.stats.map_output_records);
    assert_eq!(snap.counters["engine.blocks_scanned"], out.stats.blocks_scanned);
    assert_eq!(snap.counters["engine.bytes_scanned"], out.stats.bytes_scanned);
    assert!(snap.counters["engine.shuffle_records"] <= out.stats.map_output_records);
    let events = obs.core().expect("on").tracer.drain();
    assert_eq!(named(&events, "map_phase").len(), 1);
    assert_eq!(named(&events, "reduce_phase").len(), 1);
}

#[test]
fn observed_external_run_counts_shuffle_bytes() {
    let obs = Obs::new();
    let s = store();
    let cfg = s3_engine::ExternalConfig {
        exec: s3_engine::ExecConfig {
            num_threads: 2,
            num_reducers: 4,
        ..s3_engine::ExecConfig::default()
        },
        spill_records: 64,
        tmp_dir: None,
    };
    let (_, spills) = s3_engine::run_job_external_observed(&Count, &s, &cfg, &obs).expect("io");
    let snap = obs.snapshot().expect("on");
    assert_eq!(snap.counters["engine.shuffle_bytes"], spills.spill_bytes);
    assert_eq!(snap.counters["engine.spill_runs"], spills.spills);
    let events = obs.core().expect("on").tracer.drain();
    assert_eq!(named(&events, "spill").len() as u64, spills.spills);
    assert_eq!(named(&events, "merge_partition").len(), 4);
}
