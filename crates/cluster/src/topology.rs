//! Cluster topology: the set of nodes and their rack layout.

use crate::network::NetworkModel;
use crate::node::{Node, NodeId, NodeSpec, RackId};
use serde::{Deserialize, Serialize};

/// An immutable cluster description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTopology {
    nodes: Vec<Node>,
    network: NetworkModel,
    num_racks: u16,
}

impl ClusterTopology {
    /// The paper's evaluation cluster: 40 slaves in three racks of 15/15/10,
    /// 1 Gbps network, one map slot and one reduce slot per node.
    pub fn paper_cluster() -> Self {
        ClusterBuilder::new()
            .rack(15)
            .rack(15)
            .rack(10)
            .network(NetworkModel::one_gbps())
            .build()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of slave nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> u16 {
        self.num_racks
    }

    /// Look up a node.
    ///
    /// # Panics
    /// Panics on an unknown id (ids are dense by construction).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Rack of a node.
    pub fn rack_of(&self, id: NodeId) -> RackId {
        self.node(id).rack
    }

    /// Nodes belonging to `rack`, in id order.
    pub fn nodes_in_rack(&self, rack: RackId) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(move |n| n.rack == rack)
    }

    /// Total map slots across the cluster — the paper's `m` (blocks per
    /// segment equals concurrent map slots).
    pub fn total_map_slots(&self) -> u32 {
        self.nodes.iter().map(|n| n.spec.map_slots).sum()
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.nodes.iter().map(|n| n.spec.reduce_slots).sum()
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }
}

/// Builder for [`ClusterTopology`].
///
/// The node spec in effect when [`ClusterBuilder::rack`] is called applies
/// to that rack's nodes, so heterogeneous clusters are built by
/// interleaving spec changes with rack additions.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    racks: Vec<(u32, NodeSpec)>,
    spec: NodeSpec,
    network: NetworkModel,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Start an empty cluster with default node spec and 1 Gbps network.
    pub fn new() -> Self {
        ClusterBuilder {
            racks: Vec::new(),
            spec: NodeSpec::default(),
            network: NetworkModel::one_gbps(),
        }
    }

    /// Append a rack containing `nodes` nodes using the current node spec.
    pub fn rack(mut self, nodes: u32) -> Self {
        self.racks.push((nodes, self.spec));
        self
    }

    /// Use `spec` for racks added afterwards.
    pub fn node_spec(mut self, spec: NodeSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Set map slots per node for racks added afterwards — and, for
    /// convenience, retroactively on racks already added (slot counts are
    /// usually cluster-wide configuration, unlike speed factors).
    pub fn map_slots(mut self, slots: u32) -> Self {
        self.spec.map_slots = slots;
        for (_, spec) in &mut self.racks {
            spec.map_slots = slots;
        }
        self
    }

    /// Set reduce slots per node, with the same retroactive convenience as
    /// [`ClusterBuilder::map_slots`].
    pub fn reduce_slots(mut self, slots: u32) -> Self {
        self.spec.reduce_slots = slots;
        for (_, spec) in &mut self.racks {
            spec.reduce_slots = slots;
        }
        self
    }

    /// Set the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if no racks were added or any rack is empty.
    pub fn build(self) -> ClusterTopology {
        assert!(!self.racks.is_empty(), "cluster needs at least one rack");
        let mut nodes = Vec::new();
        for (rack_idx, &(count, spec)) in self.racks.iter().enumerate() {
            assert!(count > 0, "rack {rack_idx} is empty");
            for _ in 0..count {
                let id = NodeId(nodes.len() as u32);
                nodes.push(Node {
                    id,
                    rack: RackId(rack_idx as u16),
                    spec,
                });
            }
        }
        ClusterTopology {
            nodes,
            network: self.network,
            num_racks: self.racks.len() as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterTopology::paper_cluster();
        assert_eq!(c.num_nodes(), 40);
        assert_eq!(c.num_racks(), 3);
        assert_eq!(c.total_map_slots(), 40);
        assert_eq!(c.nodes_in_rack(RackId(0)).count(), 15);
        assert_eq!(c.nodes_in_rack(RackId(2)).count(), 10);
    }

    #[test]
    fn ids_are_dense_and_rack_assignment_contiguous() {
        let c = ClusterTopology::paper_cluster();
        for (i, n) in c.nodes().iter().enumerate() {
            assert_eq!(n.id, NodeId(i as u32));
        }
        assert_eq!(c.rack_of(NodeId(0)), RackId(0));
        assert_eq!(c.rack_of(NodeId(14)), RackId(0));
        assert_eq!(c.rack_of(NodeId(15)), RackId(1));
        assert_eq!(c.rack_of(NodeId(39)), RackId(2));
    }

    #[test]
    fn builder_customization() {
        let c = ClusterBuilder::new()
            .rack(2)
            .rack(2)
            .map_slots(4)
            .reduce_slots(2)
            .build();
        assert_eq!(c.total_map_slots(), 16);
        assert_eq!(c.total_reduce_slots(), 8);
    }

    #[test]
    fn heterogeneous_racks_keep_their_specs() {
        let slow = NodeSpec {
            speed_factor: 0.5,
            ..NodeSpec::default()
        };
        let c = ClusterBuilder::new()
            .rack(2)
            .node_spec(slow)
            .rack(3)
            .build();
        assert_eq!(c.node(NodeId(0)).spec.speed_factor, 1.0);
        assert_eq!(c.node(NodeId(1)).spec.speed_factor, 1.0);
        for i in 2..5 {
            assert_eq!(c.node(NodeId(i)).spec.speed_factor, 0.5);
        }
    }

    #[test]
    fn slot_setters_apply_retroactively() {
        let c = ClusterBuilder::new().rack(2).rack(2).map_slots(3).build();
        for n in c.nodes() {
            assert_eq!(n.spec.map_slots, 3);
        }
        assert_eq!(c.total_map_slots(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn empty_cluster_panics() {
        ClusterBuilder::new().build();
    }
}
