//! A capacity scheduler in the style of Yahoo!'s Hadoop capacity scheduler
//! (Section II-B): the cluster is statically partitioned into queues, each
//! guaranteed a fraction of the slots; jobs are assigned to queues and run
//! FIFO within their queue.
//!
//! We partition by node: queue `q` owns the nodes with `id % num_queues ==
//! q`. This captures the paper's criticism precisely — the partitioning is
//! static, so a busy queue cannot borrow an idle queue's slots, and jobs in
//! one queue still scan the file independently.

use s3_cluster::NodeId;
use s3_mapreduce::{Batch, BatchKey, JobId, MapTaskSpec, ReduceTaskSpec, SchedCtx, Scheduler};
use s3_sim::SimDuration;

/// Static-partition capacity scheduler.
#[derive(Debug)]
pub struct CapacityScheduler {
    num_queues: u32,
    /// Per-queue FIFO of incomplete batches.
    queues: Vec<Vec<Batch>>,
    next_queue: u32,
    next_key: u64,
}

impl CapacityScheduler {
    /// Create with `num_queues` equal partitions.
    ///
    /// # Panics
    /// Panics if `num_queues` is zero.
    pub fn new(num_queues: u32) -> Self {
        assert!(num_queues > 0, "need at least one queue");
        CapacityScheduler {
            num_queues,
            queues: (0..num_queues).map(|_| Vec::new()).collect(),
            next_queue: 0,
            next_key: 0,
        }
    }

    fn queue_of_node(&self, node: NodeId) -> usize {
        (node.0 % self.num_queues) as usize
    }

    fn find_batch(&mut self, key: BatchKey) -> &mut Batch {
        self.queues
            .iter_mut()
            .flatten()
            .find(|b| b.key() == key)
            .expect("completion for unknown batch")
    }

    fn reap(&mut self, ctx: &mut SchedCtx<'_>, key: BatchKey) {
        for queue in &mut self.queues {
            if let Some(pos) = queue.iter().position(|b| b.key() == key) {
                if queue[pos].is_complete() {
                    let batch = queue.remove(pos);
                    for &job in batch.jobs() {
                        ctx.complete_job(job);
                    }
                }
                return;
            }
        }
    }
}

impl Scheduler for CapacityScheduler {
    fn name(&self) -> String {
        format!("Capacity{}", self.num_queues)
    }

    fn on_job_arrival(&mut self, ctx: &mut SchedCtx<'_>, job: JobId) {
        let req = ctx.jobs.get(job);
        let blocks = ctx.dfs.file(req.file).blocks.clone();
        let key = BatchKey(self.next_key);
        self.next_key += 1;
        // Each queue only has its fraction of slots; the unoverlapped
        // shuffle estimate uses the partition's capacity.
        let slots = (ctx.map_slots() / self.num_queues).max(1);
        let ready =
            ctx.now + SimDuration::from_secs_f64(ctx.cost.submit_overhead_secs(blocks.len()));
        let batch = Batch::new(key, vec![job], &blocks, ctx.jobs, ctx.dfs, ready, slots);
        let q = self.next_queue as usize;
        self.next_queue = (self.next_queue + 1) % self.num_queues;
        self.queues[q].push(batch);
    }

    fn assign_map(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<MapTaskSpec> {
        // The node only serves its own queue: static partitioning.
        let q = self.queue_of_node(node);
        let now = ctx.now;
        let head = self.queues[q].iter_mut().find(|b| !b.maps_exhausted())?;
        head.next_map_for(node, now, ctx.dfs, ctx.cluster)
    }

    fn assign_reduce(&mut self, ctx: &mut SchedCtx<'_>, node: NodeId) -> Option<ReduceTaskSpec> {
        let q = self.queue_of_node(node);
        let now = ctx.now;
        self.queues[q].iter_mut().find_map(|b| b.next_reduce(now))
    }

    fn on_map_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.find_batch(spec.batch).on_map_done();
        self.reap(ctx, spec.batch);
    }

    fn on_reduce_complete(&mut self, ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.find_batch(spec.batch).on_reduce_done();
        self.reap(ctx, spec.batch);
    }

    fn on_map_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &MapTaskSpec) {
        self.find_batch(spec.batch).requeue_map(spec.block);
    }

    fn on_reduce_failed(&mut self, _ctx: &mut SchedCtx<'_>, _node: NodeId, spec: &ReduceTaskSpec) {
        self.find_batch(spec.batch).requeue_reduce(spec.partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_cluster::{ClusterTopology, SlowdownSchedule};
    use s3_dfs::{Dfs, RoundRobinPlacement, MB};
    use s3_mapreduce::{simulate, CostModel, EngineConfig, RunMetrics, Scheduler};
    use s3_workloads::wordcount_normal;

    fn run(scheduler: &mut dyn Scheduler, blocks: u64, arrivals: &[f64]) -> RunMetrics {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let file = dfs
            .create_file(
                &cluster,
                "in",
                blocks * 64 * MB,
                64 * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        let workload =
            s3_mapreduce::job::requests_from_arrivals(&wordcount_normal(), file, arrivals);
        simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dfs,
            &CostModel::deterministic(),
            &workload,
            scheduler,
            &EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn two_queues_run_two_jobs_concurrently() {
        let m = run(&mut CapacityScheduler::new(2), 160, &[0.0, 1.0]);
        assert_eq!(m.outcomes.len(), 2);
        // Both jobs finish within ~the same window (parallel queues), not
        // serially like FIFO.
        let done: Vec<f64> = m.outcomes.iter().map(|o| o.completed.as_secs_f64()).collect();
        let gap = (done[0] - done[1]).abs();
        let tet = m.tet().as_secs_f64();
        assert!(gap < 0.3 * tet, "queues should overlap: {done:?}");
        // No sharing.
        assert_eq!(m.blocks_read, 320);
    }

    #[test]
    fn static_partition_cannot_borrow_idle_capacity() {
        // One job in a two-queue cluster only ever uses half the slots —
        // the paper's criticism of pre-determined partitions.
        let partitioned = run(&mut CapacityScheduler::new(2), 160, &[0.0]);
        let whole = run(&mut CapacityScheduler::new(1), 160, &[0.0]);
        let ratio = partitioned.tet().as_secs_f64() / whole.tet().as_secs_f64();
        assert!(ratio > 1.5, "half the slots should be ~2x slower: {ratio}");
    }

    #[test]
    fn jobs_round_robin_across_queues_and_fifo_within() {
        // Four jobs on two queues: jobs 0,2 in queue 0 and 1,3 in queue 1,
        // so job 2 waits for job 0 but not for job 1.
        let m = run(&mut CapacityScheduler::new(2), 120, &[0.0, 0.5, 1.0, 1.5]);
        assert_eq!(m.outcomes.len(), 4);
        assert!(m.outcomes[2].completed > m.outcomes[0].completed);
        assert!(m.outcomes[3].completed > m.outcomes[1].completed);
    }

    #[test]
    fn name_reports_queue_count() {
        assert_eq!(CapacityScheduler::new(3).name(), "Capacity3");
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        CapacityScheduler::new(0);
    }
}
