//! Simulated time.
//!
//! Time is represented as an integer number of **microseconds** since the
//! start of the simulation. Integer time keeps the event calendar totally
//! ordered and reproducible across platforms (no floating-point tie
//! ambiguity), while one-microsecond resolution is far below any modeled
//! latency (heartbeats are hundreds of milliseconds, tasks are seconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any practically reachable simulated instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier` is after `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Is this the zero duration?
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "durations cannot be scaled negatively");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        (s * 1e6).round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.2345678).to_string(), "1.235s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
