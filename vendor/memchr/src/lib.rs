//! Offline vendored SWAR scan kernel.
//!
//! A minimal `memchr`-style crate providing the byte-level primitives the
//! engine's scan hot path is built on: single-byte search, substring search,
//! newline splitting with `str::lines` semantics, and ASCII-whitespace token
//! splitting matching `str::split_whitespace` on ASCII input.
//!
//! Everything runs `usize`-at-a-time (SWAR: SIMD within a register) with no
//! `unsafe`, no allocation, and no dependencies, so it is portable across the
//! targets this workspace builds for while still moving multiple GB/s.
//!
//! The classic SWAR tricks used throughout (see "Bit Twiddling Hacks"):
//!
//! * a word has a zero byte iff `(w - 0x0101..01) & !w & 0x8080..80 != 0`;
//! * a word has a byte `< n` (for `n <= 128`) iff
//!   `(w - n*0x0101..01) & !w & 0x8080..80 != 0`.
//!
//! Both are *exact* for the ranges we use them in; the tokenizer additionally
//! verifies candidate words byte-by-byte because "byte < 0x21" over-approximates
//! "is ASCII whitespace" (control characters are token bytes, not separators).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

const WORD: usize = core::mem::size_of::<usize>();
/// `0x0101..01`: every byte is 1.
const LO: usize = usize::from_ne_bytes([0x01; WORD]);
/// `0x8080..80`: every byte has the high bit set.
const HI: usize = usize::from_ne_bytes([0x80; WORD]);

#[inline]
fn splat(b: u8) -> usize {
    LO * b as usize
}

#[inline]
fn load(haystack: &[u8], at: usize) -> usize {
    let mut buf = [0u8; WORD];
    buf.copy_from_slice(&haystack[at..at + WORD]);
    // Little-endian lane order, so memory byte `k` is register bits
    // `8k..8k+8` and `trailing_zeros / 8` recovers a byte index. On a
    // big-endian target this costs one byte swap.
    usize::from_le_bytes(buf)
}

/// Non-zero iff `w` contains a zero byte.
///
/// NOTE: exact only as a boolean — the subtraction borrows across bytes, so
/// bytes *after* a zero byte may be flagged too. Use [`zero_byte_mask_exact`]
/// when counting.
#[inline]
fn zero_byte_mask(w: usize) -> usize {
    w.wrapping_sub(LO) & !w & HI
}

/// Per-byte-exact zero mask: bit 7 of each byte is set iff that byte is zero.
///
/// `(w & 0x7f..) + 0x7f..` cannot carry across bytes, so unlike
/// [`zero_byte_mask`] this is safe to popcount.
#[inline]
fn zero_byte_mask_exact(w: usize) -> usize {
    let t = (w & !HI) + !HI;
    !(t | w | !HI)
}

/// Per-byte-exact ASCII-whitespace mask: bit 7 of each byte is set iff that
/// byte is one of `{0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x20}`.
///
/// Works on the low 7 bits of each byte (whitespace is pure ASCII, so any
/// byte with the high bit set is a token byte) with carry-free per-byte
/// adds: every intermediate per-byte sum stays below 256, so nothing
/// propagates across lanes and the mask is safe for `trailing_zeros` /
/// popcount — no byte-by-byte verification pass needed.
#[inline]
fn ws_mask(w: usize) -> usize {
    let w7 = w & !HI;
    // Bit 7 set iff the (7-bit) byte is >= 0x09 / >= 0x0E.
    let ge_tab = (w7 + splat(0x80 - 0x09)) & HI;
    let ge_after_cr = (w7 + splat(0x80 - 0x0E)) & HI;
    let in_tab_cr = ge_tab & !ge_after_cr;
    // Bit 7 set iff the (7-bit) byte is exactly 0x20.
    let z = w7 ^ splat(0x20);
    let eq_space = !((z + splat(0x7F)) & HI) & HI;
    (in_tab_cr | eq_space) & !w
}

/// Returns the index of the first occurrence of `needle` in `haystack`.
///
/// Equivalent to `haystack.iter().position(|&b| b == needle)` but scans one
/// `usize` word per step.
#[inline]
pub fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    let n = haystack.len();
    let pat = splat(needle);
    let mut i = 0;
    while i + WORD <= n {
        if zero_byte_mask(load(haystack, i) ^ pat) != 0 {
            // The word contains the needle; locate it byte-by-byte.
            for (j, &b) in haystack[i..i + WORD].iter().enumerate() {
                if b == needle {
                    return Some(i + j);
                }
            }
            unreachable!("zero_byte_mask flagged a word without the needle");
        }
        i += WORD;
    }
    haystack[i..].iter().position(|&b| b == needle).map(|j| i + j)
}

/// Iterator over all positions of `needle` in `haystack`, ascending.
pub fn memchr_iter(needle: u8, haystack: &[u8]) -> Memchr<'_> {
    Memchr { needle, haystack, pos: 0 }
}

/// Iterator returned by [`memchr_iter`].
pub struct Memchr<'h> {
    needle: u8,
    haystack: &'h [u8],
    pos: usize,
}

impl Iterator for Memchr<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let off = memchr(self.needle, &self.haystack[self.pos..])?;
        let at = self.pos + off;
        self.pos = at + 1;
        Some(at)
    }
}

/// Returns the index of the first occurrence of `needle` as a substring of
/// `haystack` (`Some(0)` for an empty needle).
///
/// `memchr` on the first needle byte skips ahead; candidates are verified with
/// a slice compare. Worst case is O(n*m) like the naive algorithm, but the
/// search is only used for short patterns (grep-style predicates).
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    let mut base = 0;
    let last = haystack.len() - needle.len();
    while base <= last {
        match memchr(first, &haystack[base..=last]) {
            Some(off) => {
                let at = base + off;
                if &haystack[at..at + needle.len()] == needle {
                    return Some(at);
                }
                base = at + 1;
            }
            None => return None,
        }
    }
    None
}

/// True for the six ASCII whitespace bytes: tab, LF, vertical tab, form feed,
/// CR, space. Matches `u8::is_ascii_whitespace` plus VT (0x0B), i.e. exactly
/// the set `char::is_whitespace` accepts within ASCII — which is what
/// `str::split_whitespace` splits on for ASCII text.
#[inline]
pub fn is_ascii_space(b: u8) -> bool {
    matches!(b, b'\t' | b'\n' | 0x0B | 0x0C | b'\r' | b' ')
}

/// Iterator over the lines of a byte slice, with `str::lines` semantics:
/// lines are split at `\n`, a single trailing `\r` is stripped from each line
/// (so CR-LF endings work), and a final line ending is optional (no trailing
/// empty line is produced).
pub fn lines(data: &[u8]) -> Lines<'_> {
    Lines { data, pos: 0 }
}

/// Iterator returned by [`lines`].
pub struct Lines<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Lines<'a> {
    type Item = &'a [u8];

    #[inline]
    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.data.len() {
            return None;
        }
        let rest = &self.data[self.pos..];
        match memchr(b'\n', rest) {
            Some(off) => {
                self.pos += off + 1;
                let mut line = &rest[..off];
                // Strip one `\r` preceding the `\n` (CR-LF line ending).
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                Some(line)
            }
            None => {
                // Final unterminated line: a bare trailing `\r` is part of the
                // line, exactly as in `str::lines`.
                self.pos = self.data.len();
                Some(rest)
            }
        }
    }
}

/// Iterator over ASCII-whitespace-separated tokens of a byte slice.
///
/// Matches `str::split_whitespace` for ASCII input: runs of whitespace
/// separate tokens, leading/trailing whitespace produces no empty tokens.
/// Non-ASCII bytes (>= 0x80) are always token bytes.
pub fn tokens(data: &[u8]) -> Tokens<'_> {
    Tokens { data, pos: 0 }
}

/// Iterator returned by [`tokens`].
pub struct Tokens<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];

    #[inline]
    fn next(&mut self) -> Option<&'a [u8]> {
        let data = self.data;
        let n = data.len();
        let mut i = self.pos;
        // Skip the separating whitespace run, a word at a time: the exact
        // mask gives the first token byte straight from `trailing_zeros`.
        loop {
            if i + WORD <= n {
                let m = ws_mask(load(data, i));
                if m == HI {
                    i += WORD;
                    continue;
                }
                i += (!m & HI).trailing_zeros() as usize / 8;
                break;
            }
            while i < n && is_ascii_space(data[i]) {
                i += 1;
            }
            break;
        }
        if i >= n {
            self.pos = n;
            return None;
        }
        let start = i;
        // Find the token end the same way: the first whitespace byte at or
        // after `start`.
        loop {
            if i + WORD <= n {
                let m = ws_mask(load(data, i));
                if m == 0 {
                    i += WORD;
                    continue;
                }
                i += m.trailing_zeros() as usize / 8;
                break;
            }
            while i < n && !is_ascii_space(data[i]) {
                i += 1;
            }
            break;
        }
        self.pos = i;
        Some(&data[start..i])
    }
}

// The callback tokenizer runs 16 bytes per step (`u128` lanes: two machine
// words on 64-bit targets) — the wider stride halves the loop and branch
// overhead, which dominates on short-token text.
const WORD2: usize = 16;
const LO2: u128 = u128::from_ne_bytes([0x01; WORD2]);
const HI2: u128 = u128::from_ne_bytes([0x80; WORD2]);

#[inline]
fn splat2(b: u8) -> u128 {
    LO2 * b as u128
}

#[inline]
fn load2(haystack: &[u8], at: usize) -> u128 {
    let mut buf = [0u8; WORD2];
    buf.copy_from_slice(&haystack[at..at + WORD2]);
    u128::from_le_bytes(buf)
}

/// [`ws_mask`] over `u128` lanes; same carry-free construction, same
/// per-byte exactness.
#[inline]
fn ws_mask2(w: u128) -> u128 {
    let w7 = w & !HI2;
    let ge_tab = (w7 + splat2(0x80 - 0x09)) & HI2;
    let ge_after_cr = (w7 + splat2(0x80 - 0x0E)) & HI2;
    let in_tab_cr = ge_tab & !ge_after_cr;
    let z = w7 ^ splat2(0x20);
    let eq_space = !((z + splat2(0x7F)) & HI2) & HI2;
    (in_tab_cr | eq_space) & !w
}

/// Call `f` on every ASCII-whitespace-separated token of `data`, in order.
///
/// Identical output to [`tokens`], but much faster on short-token text:
/// the per-byte whitespace mask of each 16-byte group is computed exactly
/// once and token boundaries are read off its bits, so there is no
/// per-token iterator state round-trip and no byte re-scanning. This is
/// the scan engines' hot-loop entry point.
#[inline]
pub fn for_each_token<'a>(data: &'a [u8], mut f: impl FnMut(&'a [u8])) {
    /// Sentinel for "no token currently open" — cheaper than `Option` in
    /// the mixed-word inner loop.
    const NONE: usize = usize::MAX;
    let n = data.len();
    // Start of the currently open (unterminated) token, if any.
    let mut open: usize = NONE;
    let mut i = 0;
    while i + WORD2 <= n {
        let m = ws_mask2(load2(data, i));
        if m == 0 {
            // All token bytes: open a token here if none is running.
            if open == NONE {
                open = i;
            }
            i += WORD2;
            continue;
        }
        if m == HI2 {
            // All whitespace: close any running token.
            if open != NONE {
                f(&data[open..i]);
                open = NONE;
            }
            i += WORD2;
            continue;
        }
        // Mixed group: walk the whitespace bytes in order; each one ends
        // the non-empty token run (if any) before it. Folding `open` into
        // the scan cursor up front keeps the loop body branch-light.
        let mut ws = m;
        let mut pos = if open != NONE { open } else { i };
        open = NONE;
        loop {
            let p = i + ws.trailing_zeros() as usize / 8;
            if p > pos {
                f(&data[pos..p]);
            }
            pos = p + 1;
            ws &= ws - 1;
            if ws == 0 {
                break;
            }
        }
        if pos < i + WORD2 {
            open = pos;
        }
        i += WORD2;
    }
    while i < n {
        if is_ascii_space(data[i]) {
            if open != NONE {
                f(&data[open..i]);
                open = NONE;
            }
        } else if open == NONE {
            open = i;
        }
        i += 1;
    }
    if open != NONE {
        f(&data[open..n]);
    }
}

/// Total number of newline bytes in `data`, scanning a word at a time.
///
/// Cheap population-count over the SWAR mask; used by benches and stats.
pub fn count_lines(data: &[u8]) -> usize {
    let pat = splat(b'\n');
    let n = data.len();
    let mut i = 0;
    let mut count = 0;
    while i + WORD <= n {
        count += zero_byte_mask_exact(load(data, i) ^ pat).count_ones() as usize;
        i += WORD;
    }
    count + data[i..].iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memchr_matches_position() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"hello world",
            b"aaaaaaaaaaaaaaaaaab",
            b"\x00\x01\x02\x03\x04\x05\x06\x07\x08",
            b"no newline here at all, a fairly long sentence ok",
        ];
        for hay in cases {
            for needle in [b'a', b'b', b'\n', b'\x00', b'z', b' '] {
                assert_eq!(
                    memchr(needle, hay),
                    hay.iter().position(|&b| b == needle),
                    "needle {needle:?} in {hay:?}"
                );
            }
        }
    }

    #[test]
    fn memchr_iter_finds_all() {
        let hay = b"a.b..c...d....e";
        let got: Vec<usize> = memchr_iter(b'.', hay).collect();
        let want: Vec<usize> =
            hay.iter().enumerate().filter(|(_, &b)| b == b'.').map(|(i, _)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn find_matches_naive() {
        let hay = b"the quick brown fox jumps over the lazy dog";
        for needle in [&b"the"[..], b"fox", b"dog", b"cat", b"", b"o", b"over the"] {
            let naive = if needle.is_empty() {
                Some(0)
            } else {
                hay.windows(needle.len()).position(|w| w == needle)
            };
            assert_eq!(find(hay, needle), naive, "needle {needle:?}");
        }
        assert_eq!(find(b"ab", b"abc"), None);
    }

    #[test]
    fn lines_match_str_lines() {
        let cases = [
            "",
            "a",
            "a\n",
            "a\nb",
            "a\nb\n",
            "\n",
            "\n\n",
            "a\r\nb\r\n",
            "a\r\nb",
            "a\r",
            "a\r\n\r\nb",
            "mixed\nendings\r\nhere\rtoo\n",
        ];
        for case in cases {
            let got: Vec<&[u8]> = lines(case.as_bytes()).collect();
            let want: Vec<&[u8]> = case.lines().map(str::as_bytes).collect();
            assert_eq!(got, want, "input {case:?}");
        }
    }

    #[test]
    fn tokens_match_split_whitespace() {
        let cases = [
            "",
            " ",
            "one",
            "  leading",
            "trailing  ",
            "a b\tc\nd\re\x0bf\x0cg",
            "multi   space\t\truns\n\nhere",
            "word-with-punct, another!",
        ];
        for case in cases {
            let got: Vec<&[u8]> = tokens(case.as_bytes()).collect();
            let want: Vec<&[u8]> = case.split_whitespace().map(str::as_bytes).collect();
            assert_eq!(got, want, "input {case:?}");
        }
    }

    #[test]
    fn tokens_treat_control_bytes_as_token_bytes() {
        // 0x00..0x08 are < 0x21 but are not whitespace: they must stay inside
        // tokens (this is the case the per-byte verification exists for).
        let data = b"a\x00b \x01\x02  c\x1fd";
        let got: Vec<&[u8]> = tokens(data).collect();
        assert_eq!(got, vec![&b"a\x00b"[..], b"\x01\x02", b"c\x1fd"]);
    }

    #[test]
    fn tokens_accept_arbitrary_non_utf8_bytes() {
        let data = b"\xff\xfe \x80\x81\tok";
        let got: Vec<&[u8]> = tokens(data).collect();
        assert_eq!(got, vec![&b"\xff\xfe"[..], b"\x80\x81", b"ok"]);
    }

    #[test]
    fn for_each_token_matches_tokens_iterator() {
        let cases: &[&[u8]] = &[
            b"",
            b" ",
            b"one",
            b"  leading",
            b"trailing  ",
            b"a b\tc\nd\re\x0bf\x0cg",
            b"multi   space\t\truns\n\nhere",
            b"a\x00b \x01\x02  c\x1fd",
            b"\xff\xfe \x80\x81\tok",
            b"averyveryverylongtokenwithnospacesatallinsideofit and short",
            b"w w w w w w w w w w w w w w w w w w w w w w w w",
        ];
        for case in cases {
            let mut got: Vec<&[u8]> = Vec::new();
            for_each_token(case, |t| got.push(t));
            let want: Vec<&[u8]> = tokens(case).collect();
            assert_eq!(got, want, "input {case:?}");
        }
    }

    #[test]
    fn count_lines_matches_filter() {
        for case in ["", "a", "a\n", "\n\n\n", "word\nword\nword", "x\r\ny\r\n"] {
            assert_eq!(
                count_lines(case.as_bytes()),
                case.bytes().filter(|&b| b == b'\n').count(),
                "input {case:?}"
            );
        }
    }
}
