//! Satellite (c): the zero-copy kernel scan path is **byte-identical** to
//! the legacy String path — same records, same map-output counts — across
//! thread counts 1..=16, both scan paths (plain engine and shared-scan
//! server), adaptive segment sizing on and off, and corpora stressing the
//! tokenizer's edge cases: empty lines, trailing newlines, CR-LF endings,
//! tabs, and multi-space runs.

use proptest::prelude::*;
use s3_engine::{
    run_job, run_job_legacy, run_merged, run_merged_legacy, AdaptiveConfig, BlockStore,
    ExecConfig, MapReduceJob, ScanPath, ServerConfig, SharedScanServer,
};
use std::time::Duration;

/// Prefix wordcount with every engine path switchable per instance:
/// buffered vs fold combiner, per-line vs per-token map, and the
/// token-identity fast path (raw-byte interning). All four must agree.
#[derive(Clone)]
struct Wc {
    prefix: String,
    fold: bool,
    token: bool,
    identity: bool,
}

impl MapReduceJob for Wc {
    type K = String;
    type V = i64;
    type Out = i64;

    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.prefix) {
                emit(w.to_string(), 1);
            }
        }
    }

    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }

    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }

    fn combine_is_fold(&self) -> bool {
        self.fold
    }

    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }

    fn map_is_per_token(&self) -> bool {
        self.token
    }

    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.prefix) {
            emit(token.to_string(), 1);
        }
    }

    fn map_emits_token(&self) -> bool {
        self.identity
    }

    fn token_value(&self, token: &[u8]) -> Option<i64> {
        token.starts_with(self.prefix.as_bytes()).then_some(1)
    }

    fn token_key(&self, token: &[u8]) -> String {
        String::from_utf8_lossy(token).into_owned()
    }
}

/// Expand code bytes into a corpus that hits the tokenizer's edge cases:
/// short colliding words joined by separators including multi-space runs,
/// tabs, empty lines (`\n\n`), CR-LF endings, and sometimes no trailing
/// newline at all.
fn build_corpus(codes: &[u8]) -> String {
    const WORDS: [&str; 6] = ["a", "ab", "abc", "b", "ba", "cab"];
    const SEPS: [&str; 8] = [" ", "  ", "   ", "\t", "\n", "\n\n", "\r\n", " \t "];
    let mut out = String::new();
    for pair in codes.chunks(2) {
        out.push_str(WORDS[pair[0] as usize % WORDS.len()]);
        let sep = pair.get(1).copied().unwrap_or(0);
        out.push_str(SEPS[sep as usize % SEPS.len()]);
    }
    out
}

fn job_variants(prefix: &str) -> Vec<Wc> {
    let p = prefix.to_string();
    vec![
        Wc { prefix: p.clone(), fold: false, token: false, identity: false },
        Wc { prefix: p.clone(), fold: true, token: false, identity: false },
        Wc { prefix: p.clone(), fold: true, token: true, identity: false },
        Wc { prefix: p, fold: true, token: true, identity: true },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel `run_job` equals legacy `run_job` for every job variant,
    /// blocking, and thread count in 1..=16.
    #[test]
    fn run_job_kernel_equals_legacy(
        codes in prop::collection::vec(0u8..48, 2..160),
        block_bytes in 4usize..96,
        threads in prop::sample::select(vec![1usize, 2, 3, 4, 8, 16]),
        reducers in 1usize..6,
        prefix in prop::sample::select(vec!["", "a", "ab", "c"]),
    ) {
        let store = BlockStore::from_text(&build_corpus(&codes), block_bytes);
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        for job in job_variants(prefix) {
            let kernel = run_job(&job, &store, &cfg);
            let legacy = run_job_legacy(&job, &store, &cfg);
            prop_assert_eq!(&kernel.records, &legacy.records,
                "fold={} token={} identity={}", job.fold, job.token, job.identity);
            prop_assert_eq!(kernel.stats.map_output_records, legacy.stats.map_output_records);
            prop_assert_eq!(kernel.stats.bytes_scanned, legacy.stats.bytes_scanned);
        }
    }

    /// Kernel `run_merged` equals legacy `run_merged` when one batch mixes
    /// all four job variants over one shared scan.
    #[test]
    fn run_merged_kernel_equals_legacy(
        codes in prop::collection::vec(0u8..48, 2..160),
        block_bytes in 4usize..96,
        threads in prop::sample::select(vec![1usize, 2, 4, 16]),
        reducers in 1usize..6,
    ) {
        let store = BlockStore::from_text(&build_corpus(&codes), block_bytes);
        let jobs = job_variants("a");
        let refs: Vec<&Wc> = jobs.iter().collect();
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        let kernel = run_merged(&refs, &store, &cfg);
        let legacy = run_merged_legacy(&refs, &store, &cfg);
        for ((k, l), job) in kernel.iter().zip(&legacy).zip(&jobs) {
            prop_assert_eq!(&k.records, &l.records,
                "fold={} token={} identity={}", job.fold, job.token, job.identity);
            prop_assert_eq!(k.stats.map_output_records, l.stats.map_output_records);
        }
    }

    /// The shared-scan server agrees with itself across scan paths and with
    /// the plain engine, adaptive sizing on and off.
    #[test]
    fn server_kernel_equals_legacy(
        codes in prop::collection::vec(0u8..48, 2..120),
        block_bytes in 4usize..64,
        threads in prop::sample::select(vec![1usize, 2, 4]),
        adaptive in any::<bool>(),
    ) {
        let store = BlockStore::from_text(&build_corpus(&codes), block_bytes);
        let jobs = job_variants("a");
        let reference = run_job(&jobs[0], &store,
            &ExecConfig { num_threads: 1, num_reducers: 2 ,..ExecConfig::default()});

        let mut outputs = Vec::new();
        for scan_path in [ScanPath::Kernel, ScanPath::Legacy] {
            let mut cfg = ServerConfig::new(2, threads);
            cfg.scan_path = scan_path;
            if adaptive {
                cfg.adaptive = AdaptiveConfig {
                    enabled: true,
                    target_cadence: Duration::from_micros(500),
                    min_blocks_per_segment: 1,
                    max_blocks_per_segment: 8,
                };
            }
            let server = SharedScanServer::with_config(store.clone(), cfg);
            let handles = server.submit_all(jobs.clone());
            let outs: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait().expect("job completes"))
                .collect();
            server.shutdown();
            outputs.push(outs);
        }
        let (kernel, legacy) = (&outputs[0], &outputs[1]);
        for ((k, l), job) in kernel.iter().zip(legacy).zip(&jobs) {
            prop_assert_eq!(&k.records, &l.records,
                "fold={} token={} identity={}", job.fold, job.token, job.identity);
            prop_assert_eq!(&k.records, &reference.records, "matches plain engine");
            prop_assert_eq!(k.stats.map_output_records, l.stats.map_output_records);
        }
    }
}
