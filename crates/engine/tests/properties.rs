//! Property-based tests of the real engine: merged-scan equivalence and
//! configuration independence under randomized inputs.

use proptest::prelude::*;
use s3_engine::{run_job, run_merged, BlockStore, ExecConfig, MapReduceJob};

/// Counts words with a given prefix (combiner on).
struct Prefix(String);

impl MapReduceJob for Prefix {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.0) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
}

/// The same prefix count as [`Prefix`], but with the fold-combiner and
/// per-token map fast paths switchable per instance — so one merged batch
/// can mix streamed and buffered jobs, exercising both engine paths at
/// once. Outputs must be identical regardless of the flags.
struct FlexPrefix {
    prefix: String,
    fold: bool,
    token: bool,
}

impl MapReduceJob for FlexPrefix {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            if w.starts_with(&self.prefix) {
                emit(w.to_string(), 1);
            }
        }
    }
    fn combine(&self, _k: &String, v: Vec<i64>) -> Vec<i64> {
        vec![v.iter().sum()]
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        Some(v.iter().sum())
    }
    fn combine_is_fold(&self) -> bool {
        self.fold
    }
    fn combine_fold(&self, acc: &mut i64, next: i64) {
        *acc += next;
    }
    fn map_is_per_token(&self) -> bool {
        self.token
    }
    fn map_token(&self, token: &str, emit: &mut dyn FnMut(String, i64)) {
        if token.starts_with(&self.prefix) {
            emit(token.to_string(), 1);
        }
    }
}

/// A word strategy over a tiny alphabet so prefixes collide often.
fn word() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c']), 1..5)
        .prop_map(|cs| cs.into_iter().collect())
}

fn corpus() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::collection::vec(word(), 1..12), 1..60)
        .prop_map(|lines| {
            lines
                .into_iter()
                .map(|ws| ws.join(" "))
                .collect::<Vec<_>>()
                .join("\n")
                + "\n"
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any corpus, block size, and set of prefixes: the merged run
    /// equals the independent runs, record for record.
    #[test]
    fn merged_equals_independent(
        text in corpus(),
        block_bytes in 8usize..256,
        prefixes in prop::collection::vec(word(), 1..6),
        threads in 1usize..5,
        reducers in 1usize..9,
    ) {
        let store = BlockStore::from_text(&text, block_bytes);
        let jobs: Vec<Prefix> = prefixes.into_iter().map(Prefix).collect();
        let refs: Vec<&Prefix> = jobs.iter().collect();
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        let merged = run_merged(&refs, &store, &cfg);
        for (job, m) in jobs.iter().zip(&merged) {
            let solo = run_job(job, &store, &cfg);
            prop_assert_eq!(&m.records, &solo.records, "prefix {:?}", job.0);
            prop_assert_eq!(m.stats.map_output_records, solo.stats.map_output_records);
        }
    }

    /// The total count over all words equals the corpus token count,
    /// independent of blocking and parallelism.
    #[test]
    fn counts_are_conserved(
        text in corpus(),
        block_bytes in 8usize..256,
        threads in 1usize..5,
        reducers in 1usize..9,
    ) {
        let store = BlockStore::from_text(&text, block_bytes);
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        let out = run_job(&Prefix(String::new()), &store, &cfg);
        let counted: i64 = out.records.values().sum();
        let expected = text.split_whitespace().count() as i64;
        prop_assert_eq!(counted, expected);
        prop_assert_eq!(out.stats.bytes_scanned as usize, text.len());
    }

    /// Blocking at any size preserves the corpus byte-for-byte.
    #[test]
    fn block_store_preserves_text(text in corpus(), block_bytes in 1usize..512) {
        let store = BlockStore::from_text(&text, block_bytes);
        let rejoined: Vec<u8> = store.iter().flatten().copied().collect();
        prop_assert_eq!(rejoined, text.into_bytes());
    }

    /// The external (spilling) engine matches the in-memory engine for any
    /// corpus, blocking, spill-buffer size, and parallelism.
    #[test]
    fn external_equals_in_memory(
        text in corpus(),
        block_bytes in 8usize..256,
        spill_records in 1usize..64,
        threads in 1usize..4,
        reducers in 1usize..6,
    ) {
        use s3_engine::{run_job_external, ExternalConfig};
        let store = BlockStore::from_text(&text, block_bytes);
        let job = Prefix("a".into());
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        let reference = run_job(&job, &store, &cfg);
        let (out, _) = run_job_external(&job, &store, &ExternalConfig {
            exec: cfg,
            spill_records,
            tmp_dir: None,
        }).expect("spill io");
        prop_assert_eq!(out.records, reference.records);
        prop_assert_eq!(out.stats.map_output_records, reference.stats.map_output_records);
    }

    /// The fold-combiner / per-token fast paths compute exactly what the
    /// buffered paths compute, solo and in merged batches that mix
    /// streamed and buffered jobs.
    #[test]
    fn fold_and_token_paths_equal_buffered_paths(
        text in corpus(),
        block_bytes in 8usize..256,
        prefixes in prop::collection::vec(word(), 1..5),
        flag_bits in 0u32..256,
        threads in 1usize..5,
        reducers in 1usize..9,
    ) {
        let store = BlockStore::from_text(&text, block_bytes);
        let cfg = ExecConfig { num_threads: threads, num_reducers: reducers ,..ExecConfig::default()};
        // Two flag bits per job, unpacked from one sampled integer.
        let flex: Vec<FlexPrefix> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| FlexPrefix {
                prefix: p.clone(),
                fold: (flag_bits >> (2 * i)) & 1 == 1,
                token: (flag_bits >> (2 * i + 1)) & 1 == 1,
            })
            .collect();
        // Solo: each flag combination equals the plain buffered job.
        for job in &flex {
            let fast = run_job(job, &store, &cfg);
            let plain = run_job(&Prefix(job.prefix.clone()), &store, &cfg);
            prop_assert_eq!(&fast.records, &plain.records,
                "prefix {:?} fold={} token={}", job.prefix, job.fold, job.token);
            prop_assert_eq!(fast.stats.map_output_records, plain.stats.map_output_records);
        }
        // Merged: a batch mixing fold/buffered and token/line jobs still
        // equals the independent runs.
        let refs: Vec<&FlexPrefix> = flex.iter().collect();
        let merged = run_merged(&refs, &store, &cfg);
        for (job, m) in flex.iter().zip(&merged) {
            let solo = run_job(&Prefix(job.prefix.clone()), &store, &cfg);
            prop_assert_eq!(&m.records, &solo.records,
                "merged prefix {:?} fold={} token={}", job.prefix, job.fold, job.token);
            prop_assert_eq!(m.stats.map_output_records, solo.stats.map_output_records);
        }
    }

    /// The adaptive shared-scan server computes exactly what a solo run
    /// computes for any corpus, blocking, clamp window, and job set — even
    /// with a cadence target aggressive enough to force resizes on nearly
    /// every boundary.
    #[test]
    fn adaptive_server_equals_independent(
        text in corpus(),
        block_bytes in 8usize..128,
        prefixes in prop::collection::vec(word(), 1..4),
        base_bps in 1usize..6,
        max_bps in 1usize..10,
        threads in 1usize..4,
    ) {
        use s3_engine::{AdaptiveConfig, Obs, ServerConfig, SharedScanServer};
        use std::time::Duration;
        let store = BlockStore::from_text(&text, block_bytes);
        let cfg = ExecConfig { num_threads: 1, num_reducers: 3 ,..ExecConfig::default()};
        let refs: Vec<_> = prefixes
            .iter()
            .map(|p| run_job(&Prefix(p.clone()), &store, &cfg).records)
            .collect();

        let mut scfg = ServerConfig::new(base_bps, threads);
        scfg.obs = Obs::new();
        scfg.adaptive = AdaptiveConfig {
            enabled: true,
            // Microsecond cadence over microsecond blocks: the computed
            // ideal size swings hard, so clamping does real work here.
            target_cadence: Duration::from_micros(50),
            min_blocks_per_segment: 1,
            max_blocks_per_segment: max_bps,
        };
        let obs = scfg.obs.clone();
        let server = SharedScanServer::with_config(store, scfg);
        let handles = server.submit_all(
            prefixes.iter().map(|p| Prefix(p.clone())).collect(),
        );
        for (h, reference) in handles.into_iter().zip(&refs) {
            let out = h.wait().expect("no faults injected");
            prop_assert_eq!(&out.records, reference);
        }
        server.shutdown();

        let lo = 1u64;
        let hi = max_bps.max(1) as u64;
        let core = obs.core().expect("observed");
        for ev in core.tracer.drain().iter().filter(|e| e.name == "segment_resized") {
            prop_assert!(
                (lo..=hi).contains(&ev.ids.seg),
                "resize to {} escapes the clamp [{}, {}]", ev.ids.seg, lo, hi
            );
        }
    }

    /// The shared-scan server computes exactly what solo runs compute for
    /// any corpus, thread count 1..=16, segment size (one block, a few
    /// blocks, exactly the whole file, more than the whole file), scan
    /// path (cooperative broadcast vs resilient claim/commit), tail mode
    /// (work-assist vs legacy deadline speculation), and adaptive sizing
    /// on or off. This is the byte-identity half of the work-assisting
    /// proof: however the claim loop interleaves — including solo workers
    /// taking the coordination-free fast path and degenerate segments
    /// larger than the file — outputs never move.
    #[test]
    fn work_assisting_server_equals_independent(
        text in corpus(),
        block_bytes in 8usize..128,
        prefixes in prop::collection::vec(word(), 1..4),
        threads in 1usize..17,
        bps_sel in 0usize..4,
        speculative in any::<bool>(),
        assist in any::<bool>(),
        adaptive in any::<bool>(),
    ) {
        use s3_engine::{AdaptiveConfig, FtConfig, ServerConfig, SharedScanServer};
        use std::time::Duration;
        let store = BlockStore::from_text(&text, block_bytes);
        let n = store.num_blocks();
        let bps = [1, 3.min(n.max(1)), n.max(1), n + 7][bps_sel];
        let cfg = ExecConfig { num_threads: 1, num_reducers: 3 ,..ExecConfig::default()};
        let refs: Vec<_> = prefixes
            .iter()
            .map(|p| run_job(&Prefix(p.clone()), &store, &cfg).records)
            .collect();

        let mut scfg = ServerConfig::new(bps, threads);
        scfg.ft = FtConfig {
            speculation: speculative,
            assist,
            // Tight enough that real interleavings cross it, so the
            // legacy deadline path actually speculates here too.
            deadline_floor: Duration::from_millis(1),
            ..FtConfig::default()
        };
        if adaptive {
            scfg.adaptive = AdaptiveConfig {
                enabled: true,
                target_cadence: Duration::from_micros(50),
                min_blocks_per_segment: 1,
                max_blocks_per_segment: bps.max(4),
            };
        }
        let server = SharedScanServer::with_config(store, scfg);
        let handles = server.submit_all(
            prefixes.iter().map(|p| Prefix(p.clone())).collect(),
        );
        for ((h, reference), p) in handles.into_iter().zip(&refs).zip(&prefixes) {
            let out = h.wait().expect("no faults injected");
            prop_assert_eq!(
                &out.records, reference,
                "prefix {:?} threads {} bps {} spec {} assist {} adaptive {}",
                p, threads, bps, speculative, assist, adaptive
            );
        }
        server.shutdown();
    }

    /// A prefix job's output is always a sub-multiset of the catch-all
    /// job's output.
    #[test]
    fn filtered_output_is_contained(text in corpus(), p in word()) {
        let store = BlockStore::from_text(&text, 64);
        let cfg = ExecConfig { num_threads: 2, num_reducers: 3 ,..ExecConfig::default()};
        let all = run_job(&Prefix(String::new()), &store, &cfg);
        let filtered = run_job(&Prefix(p), &store, &cfg);
        for (k, v) in &filtered.records {
            prop_assert_eq!(all.records.get(k), Some(v));
        }
        prop_assert!(filtered.stats.map_output_records <= all.stats.map_output_records);
    }
}
