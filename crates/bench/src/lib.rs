#![warn(missing_docs)]

//! # s3-bench — the experiment harness
//!
//! One entry point per table/figure of the paper's evaluation (Section V),
//! all runnable through the `repro` binary:
//!
//! | Paper artifact | Harness function | `repro` subcommand |
//! |---|---|---|
//! | Table I (workload details) | [`experiments::run_table1`] | `table1` |
//! | Figure 3 (cost of combined jobs) | [`experiments::run_fig3`] | `fig3` |
//! | Figure 4(a) sparse/normal/64MB | [`experiments::run_fig4`] | `fig4a` |
//! | Figure 4(b) dense/normal/64MB | [`experiments::run_fig4`] | `fig4b` |
//! | Figure 4(c) sparse/heavy/64MB | [`experiments::run_fig4`] | `fig4c` |
//! | Figure 4(d) sparse/normal/128MB | [`experiments::run_fig4`] | `fig4d` |
//! | Figure 4(e) sparse/normal/32MB | [`experiments::run_fig4`] | `fig4e` |
//! | Figure 4(f) selection/400GB | [`experiments::run_fig4`] | `fig4f` |
//! | Examples 1–3 (Section III) | [`experiments::run_examples`] | `examples` |
//!
//! Results print as aligned text tables and can be dumped as JSON for
//! downstream tooling.

pub mod ablations;
pub mod scenario;
pub mod experiments;
pub mod report;

pub use experiments::{
    run_examples, run_fig3, run_fig4, run_table1, Fig3Result, Fig4Result, Fig4Variant,
    SchedulerResult,
};
