//! Cross-crate integration: datasets built by `s3-workloads` over the
//! `s3-dfs`/`s3-cluster` substrate, scheduled by every `s3-core` scheduler
//! through the `s3-mapreduce` engine — checking the invariants that must
//! hold for any scheduler.

use s3_cluster::{ClusterTopology, SlowdownSchedule};
use s3_core::{FifoScheduler, MRShareScheduler, S3Scheduler};
use s3_mapreduce::{
    job::requests_from_arrivals, simulate, CostModel, EngineConfig, RunMetrics, Scheduler,
};
use s3_workloads::{per_node_file, wordcount_normal, ArrivalPattern};

/// A small but non-trivial world: 400 blocks (10 waves), 5 jobs.
fn run_with(scheduler: &mut dyn Scheduler, arrivals: &[f64]) -> RunMetrics {
    let cluster = ClusterTopology::paper_cluster();
    // 4 GB per 40 nodes at 64 MB blocks is too big for a quick test;
    // use a 25 GB file -> 400 blocks.
    let dataset = per_node_file(&cluster, "itest", 1, 102); // 40 GB, 102 MB blocks -> ~402 blocks
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, arrivals);
    simulate(
        &cluster,
        &SlowdownSchedule::none(),
        &dataset.dfs,
        &CostModel::default(),
        &workload,
        scheduler,
        &EngineConfig::default(),
    )
    .expect("no scheduler may stall on this workload")
}

fn all_schedulers(n: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(S3Scheduler::default()),
        Box::new(FifoScheduler::new()),
        Box::new(MRShareScheduler::mrs1(n)),
        Box::new(MRShareScheduler::mrs2(n)),
        Box::new(MRShareScheduler::mrs3(n)),
    ]
}

#[test]
fn every_scheduler_completes_every_job() {
    let arrivals = [0.0, 30.0, 60.0, 90.0, 120.0];
    for mut s in all_schedulers(5) {
        let m = run_with(s.as_mut(), &arrivals);
        assert_eq!(m.outcomes.len(), 5, "{}", m.scheduler);
        for o in &m.outcomes {
            assert!(
                o.completed > o.submitted,
                "{}: job must finish after submission",
                m.scheduler
            );
        }
    }
}

#[test]
fn every_job_scans_the_whole_file_logically() {
    // logical_mb_scanned counts each scan once per served job, so for any
    // correct scheduler it equals jobs x file size.
    let arrivals = [0.0, 30.0, 60.0, 90.0, 120.0];
    for mut s in all_schedulers(5) {
        let m = run_with(s.as_mut(), &arrivals);
        let file_mb = 40.0 * 1024.0; // 1 GB per node x 40 nodes
        let expected = 5.0 * file_mb;
        let rel = (m.logical_mb_scanned - expected).abs() / expected;
        assert!(
            rel < 0.01,
            "{}: logical scan volume {} vs expected {}",
            m.scheduler,
            m.logical_mb_scanned,
            expected
        );
    }
}

#[test]
fn sharing_never_reads_more_than_fifo() {
    let arrivals = [0.0, 20.0, 40.0, 60.0, 80.0];
    let fifo = run_with(&mut FifoScheduler::new(), &arrivals);
    for mut s in all_schedulers(5) {
        let m = run_with(s.as_mut(), &arrivals);
        assert!(
            m.blocks_read <= fifo.blocks_read,
            "{} read {} blocks, FIFO read {}",
            m.scheduler,
            m.blocks_read,
            fifo.blocks_read
        );
    }
}

#[test]
fn s3_beats_fifo_on_overlapping_jobs() {
    let arrivals = [0.0, 15.0, 30.0, 45.0, 60.0];
    let s3 = run_with(&mut S3Scheduler::default(), &arrivals);
    let fifo = run_with(&mut FifoScheduler::new(), &arrivals);
    assert!(
        s3.tet() < fifo.tet(),
        "S3 TET {} vs FIFO {}",
        s3.tet(),
        fifo.tet()
    );
    assert!(
        s3.art() < fifo.art(),
        "S3 ART {} vs FIFO {}",
        s3.art(),
        fifo.art()
    );
    // And it does so by scanning less.
    assert!(s3.blocks_read < fifo.blocks_read);
}

#[test]
fn s3_response_time_is_flat_across_arrival_order() {
    // Under S3, every overlapping job responds in roughly one sweep; under
    // FIFO, response grows with queue position.
    let arrivals = [0.0, 10.0, 20.0, 30.0, 40.0];
    let s3 = run_with(&mut S3Scheduler::default(), &arrivals);
    let r: Vec<f64> = s3
        .outcomes
        .iter()
        .map(|o| o.response().as_secs_f64())
        .collect();
    let (min, max) = (
        r.iter().cloned().fold(f64::INFINITY, f64::min),
        r.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max / min < 1.5,
        "S3 responses should be flat: {r:?}"
    );

    let fifo = run_with(&mut FifoScheduler::new(), &arrivals);
    let rf: Vec<f64> = fifo
        .outcomes
        .iter()
        .map(|o| o.response().as_secs_f64())
        .collect();
    assert!(
        rf.last().unwrap() / rf.first().unwrap() > 2.0,
        "FIFO responses should ramp: {rf:?}"
    );
}

#[test]
fn poisson_arrivals_complete_under_all_schedulers() {
    let arrivals = ArrivalPattern::Poisson {
        n: 8,
        mean_gap_s: 60.0,
        seed: 17,
    }
    .times();
    for mut s in all_schedulers(8) {
        let m = run_with(s.as_mut(), &arrivals);
        assert_eq!(m.outcomes.len(), 8, "{}", m.scheduler);
    }
}

#[test]
fn multi_slot_nodes_work_under_every_scheduler() {
    // A small cluster whose nodes each run 4 concurrent maps and 2
    // reduces: the whole stack must handle multiple slots per node.
    use s3_cluster::ClusterBuilder;
    let cluster = ClusterBuilder::new()
        .rack(5)
        .rack(5)
        .map_slots(4)
        .reduce_slots(2)
        .build();
    assert_eq!(cluster.total_map_slots(), 40);
    let dataset = per_node_file(&cluster, "ms", 2, 64); // 20 GB -> 320 blocks
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 30.0, 60.0]);
    for mut s in all_schedulers(3) {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            s.as_mut(),
            &EngineConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.outcomes.len(), 3, "{}", m.scheduler);
        let expected = 3.0 * 20.0 * 1024.0;
        assert!(
            (m.logical_mb_scanned - expected).abs() < 1e-6,
            "{}: {}",
            m.scheduler,
            m.logical_mb_scanned
        );
    }
}

#[test]
fn heterogeneous_node_speeds_still_complete() {
    // Permanently slow nodes (static speed factor) spread across racks.
    use s3_cluster::{ClusterBuilder, NodeSpec};
    let slow_spec = NodeSpec {
        speed_factor: 0.6,
        ..NodeSpec::default()
    };
    let cluster = ClusterBuilder::new()
        .rack(10)
        .node_spec(slow_spec)
        .rack(10)
        .build();
    // Racks built after node_spec use the slow spec: rack 1's nodes.
    assert_eq!(cluster.node(s3_cluster::NodeId(15)).spec.speed_factor, 0.6);
    assert_eq!(cluster.node(s3_cluster::NodeId(5)).spec.speed_factor, 1.0);
    let dataset = per_node_file(&cluster, "het", 1, 64);
    let profile = wordcount_normal();
    let workload = requests_from_arrivals(&profile, dataset.file, &[0.0, 40.0]);
    for mut s in all_schedulers(2) {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            s.as_mut(),
            &EngineConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.outcomes.len(), 2, "{}", m.scheduler);
    }
}

#[test]
fn map_only_jobs_complete_under_every_scheduler() {
    // Grep-style jobs request zero reduce tasks: the whole pipeline must
    // treat "maps done" as "job done".
    let cluster = ClusterTopology::paper_cluster();
    let dataset = per_node_file(&cluster, "grep-in", 1, 102);
    let profile = s3_workloads::grep();
    let arrivals = [0.0, 20.0, 40.0];
    let workload = requests_from_arrivals(&profile, dataset.file, &arrivals);
    for mut s in all_schedulers(3) {
        let m = simulate(
            &cluster,
            &SlowdownSchedule::none(),
            &dataset.dfs,
            &CostModel::default(),
            &workload,
            s.as_mut(),
            &EngineConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.outcomes.len(), 3, "{}", m.scheduler);
        // No reduce tasks ever ran.
        assert_eq!(m.reduce_task_time.count, 0, "{}", m.scheduler);
    }
}

#[test]
fn single_job_is_equivalent_across_sharing_schedulers() {
    // With one job there is nothing to share: S3, FIFO, MRShare all read
    // the file exactly once.
    for mut s in all_schedulers(1) {
        let m = run_with(s.as_mut(), &[0.0]);
        assert_eq!(m.blocks_read as f64, 402.0, "{}", m.scheduler);
        assert_eq!(m.mb_read, m.logical_mb_scanned, "{}", m.scheduler);
    }
}
