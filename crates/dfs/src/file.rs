//! The NameNode view: files and their block lists.

use crate::block::{BlockId, BlockMeta};
use crate::placement::PlacementPolicy;
use s3_cluster::ClusterTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a file in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileMeta {
    /// This file's id.
    pub id: FileId,
    /// Human-readable name (paths are not modeled).
    pub name: String,
    /// Total logical size in bytes.
    pub size_bytes: u64,
    /// Configured block size in bytes.
    pub block_size_bytes: u64,
    /// Global ids of this file's blocks, in file order.
    pub blocks: Vec<BlockId>,
}

impl FileMeta {
    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// A file with this name already exists.
    DuplicateName(String),
    /// File size must be positive.
    EmptyFile,
    /// Block size must be positive.
    ZeroBlockSize,
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::DuplicateName(n) => write!(f, "file name already exists: {n}"),
            DfsError::EmptyFile => write!(f, "file size must be positive"),
            DfsError::ZeroBlockSize => write!(f, "block size must be positive"),
        }
    }
}

impl std::error::Error for DfsError {}

/// The metadata store (NameNode).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dfs {
    files: Vec<FileMeta>,
    blocks: Vec<BlockMeta>,
}

impl Dfs {
    /// An empty store.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Create a file of `size_bytes` split into `block_size_bytes` blocks,
    /// placing replicas with `policy`.
    pub fn create_file(
        &mut self,
        cluster: &ClusterTopology,
        name: &str,
        size_bytes: u64,
        block_size_bytes: u64,
        replication: u32,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<FileId, DfsError> {
        if size_bytes == 0 {
            return Err(DfsError::EmptyFile);
        }
        if block_size_bytes == 0 {
            return Err(DfsError::ZeroBlockSize);
        }
        if self.files.iter().any(|f| f.name == name) {
            return Err(DfsError::DuplicateName(name.to_string()));
        }

        let file_id = FileId(self.files.len() as u32);
        let num_blocks = size_bytes.div_ceil(block_size_bytes) as u32;
        let mut block_ids = Vec::with_capacity(num_blocks as usize);
        for index in 0..num_blocks {
            let id = BlockId(self.blocks.len() as u32);
            let offset = index as u64 * block_size_bytes;
            let size = (size_bytes - offset).min(block_size_bytes);
            let replicas = policy.place(cluster, index, replication);
            debug_assert_eq!(replicas.len(), replication as usize);
            self.blocks.push(BlockMeta {
                id,
                file: file_id,
                index_in_file: index,
                size_bytes: size,
                replicas,
            });
            block_ids.push(id);
        }
        self.files.push(FileMeta {
            id: file_id,
            name: name.to_string(),
            size_bytes,
            block_size_bytes,
            blocks: block_ids,
        });
        Ok(file_id)
    }

    /// File metadata.
    ///
    /// # Panics
    /// Panics on an unknown id (ids are dense and only minted here).
    pub fn file(&self, id: FileId) -> &FileMeta {
        &self.files[id.0 as usize]
    }

    /// Block metadata.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        &self.blocks[id.0 as usize]
    }

    /// All files.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// Look a file up by name.
    pub fn file_by_name(&self, name: &str) -> Option<&FileMeta> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Blocks of `file` in file order.
    pub fn blocks_of(&self, file: FileId) -> impl Iterator<Item = &BlockMeta> + '_ {
        self.file(file).blocks.iter().map(move |&b| self.block(b))
    }

    /// Total bytes stored (logical, before replication).
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::RoundRobinPlacement;
    use crate::MB;

    fn store_with_file(size_mb: u64, block_mb: u64) -> (Dfs, FileId) {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let id = dfs
            .create_file(
                &cluster,
                "input",
                size_mb * MB,
                block_mb * MB,
                1,
                &mut RoundRobinPlacement::default(),
            )
            .unwrap();
        (dfs, id)
    }

    #[test]
    fn paper_dataset_block_count() {
        // 160 GB at 64 MB blocks = 2560 blocks (Section V-C).
        let (dfs, id) = store_with_file(160 * 1024, 64);
        assert_eq!(dfs.file(id).num_blocks(), 2560);
        // 32 MB doubles it, 128 MB halves it (Section V-F).
        assert_eq!(store_with_file(160 * 1024, 32).0.file(FileId(0)).num_blocks(), 5120);
        assert_eq!(store_with_file(160 * 1024, 128).0.file(FileId(0)).num_blocks(), 1280);
    }

    #[test]
    fn last_block_may_be_short() {
        let (dfs, id) = store_with_file(100, 64);
        let blocks: Vec<_> = dfs.blocks_of(id).collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].size_bytes, 64 * MB);
        assert_eq!(blocks[1].size_bytes, 36 * MB);
    }

    #[test]
    fn block_indices_and_files_are_consistent() {
        let (dfs, id) = store_with_file(640, 64);
        for (i, b) in dfs.blocks_of(id).enumerate() {
            assert_eq!(b.index_in_file, i as u32);
            assert_eq!(b.file, id);
            assert_eq!(b.replicas.len(), 1);
        }
        assert_eq!(dfs.total_bytes(), 640 * MB);
    }

    #[test]
    fn duplicate_name_rejected() {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let mut p = RoundRobinPlacement::default();
        dfs.create_file(&cluster, "a", MB, MB, 1, &mut p).unwrap();
        let err = dfs.create_file(&cluster, "a", MB, MB, 1, &mut p).unwrap_err();
        assert!(matches!(err, DfsError::DuplicateName(_)));
    }

    #[test]
    fn zero_sizes_rejected() {
        let cluster = ClusterTopology::paper_cluster();
        let mut dfs = Dfs::new();
        let mut p = RoundRobinPlacement::default();
        assert_eq!(
            dfs.create_file(&cluster, "x", 0, MB, 1, &mut p),
            Err(DfsError::EmptyFile)
        );
        assert_eq!(
            dfs.create_file(&cluster, "x", MB, 0, 1, &mut p),
            Err(DfsError::ZeroBlockSize)
        );
    }

    #[test]
    fn lookup_by_name() {
        let (dfs, id) = store_with_file(64, 64);
        assert_eq!(dfs.file_by_name("input").unwrap().id, id);
        assert!(dfs.file_by_name("nope").is_none());
    }
}
