//! `s3bench` — the engine performance baseline emitter.
//!
//! Measures the real engine's three headline numbers on this machine and
//! writes them to `BENCH_engine.json` next to an embedded pre-recorded
//! baseline, so every PR has a perf trajectory to compare against:
//!
//! - **single_job_ms** — one `run_job` pass over the corpus;
//! - **shared_scan_bps1_ms** — a `SharedScanServer` revolution serving 4
//!   concurrent jobs at `blocks_per_segment = 1` (the smallest segments,
//!   where per-iteration fixed costs dominate);
//! - **admission_latency_ms** — submit-to-complete latency of a probe job
//!   submitted while a revolution is already live;
//! - **adaptive vs fixed** — the same shared workload under a persistent
//!   1 ms/block straggler, with fixed one-block segments vs adaptive
//!   sizing (the paper's dynamic sub-job adjustment) that can grow
//!   segments up to 32 blocks as the measured cadence allows;
//! - **assisted vs speculative** — the shared workload at four-block
//!   segments under the same persistent straggler, with the legacy
//!   deadline-speculation tail vs the work-assisting claim loop (idle
//!   workers re-execute the uncommitted tail immediately). Reports wall
//!   time and the `engine.segment_scan_us` tail (p50/p95/max), where the
//!   assist path's immediate recovery shows up directly.
//!
//! ```text
//! cargo run --release -p s3-bench --bin s3bench -- [--quick] [--out PATH]
//! ```

use s3_engine::{
    run_job, AdaptiveConfig, BlockStore, EngineFault, ExecConfig, FaultPlan, FtConfig,
    MapReduceJob, Obs, PartitionMode, ServerConfig, SharedScanServer,
};
use s3_sim::SimRng;
use s3_workloads::jobs::PatternWordCount;
use s3_workloads::text::TextGen;
use std::time::{Duration, Instant};

/// Benchmark shape (shared by the baseline and the current run).
const CORPUS_BYTES: usize = 2 << 20;
const BLOCK_BYTES: usize = 4 << 10;
const THREADS: usize = 2;
const REDUCERS: usize = 8;
const SHARED_JOBS: usize = 4;
const BLOCKS_PER_SEGMENT: usize = 1;
/// Adaptive sizing may grow segments up to this many blocks in the
/// adaptive-vs-fixed comparison.
const ADAPTIVE_MAX_BPS: usize = 32;
/// Injected per-block straggler delay for the comparison.
const STRAGGLER_DELAY_US: u64 = 1_000;
/// Blocks per segment for the assisted-vs-speculative tail comparison:
/// multi-block segments, so every segment has an uncommitted tail for the
/// fast workers to recover.
const TAIL_BPS: usize = 4;
/// Zipf exponent for the skewed-reduce comparison. At s = 1.2 over the
/// [`SKEW_VOCAB`]-word vocabulary the head word alone draws roughly a
/// quarter of all tokens, so hash partitioning hot-spots whichever shard
/// it lands in. The vocabulary is small enough that per-record volume
/// (not per-key overhead) dominates each shard's reduce cost — the
/// regime where placement decides the tail.
const SKEW_ZIPF: f64 = 1.2;
const SKEW_VOCAB: usize = 1_000;
/// Threads (= reduce shards) and segment size for the skew comparison:
/// enough shards that one hot shard visibly drags the reduce phase.
const SKEW_THREADS: usize = 4;
const SKEW_BPS: usize = 8;

/// Pre-PR baseline, measured with this same harness at commit 299ce47
/// (crossbeam::scope spawning `num_threads` OS threads on every segment
/// iteration; reduce on the coordinator thread). Units: milliseconds.
const BASELINE_COMMIT: &str = "299ce47";
const BASELINE_SINGLE_JOB_MS: f64 = 150.08;
const BASELINE_SHARED_SCAN_BPS1_MS: f64 = 66.93;
const BASELINE_ADMISSION_LATENCY_MS: f64 = 162.87;

/// Immediately-previous PR's headline numbers (String-based scan path,
/// measured with this harness at commit 3785dca), for the zero-copy
/// kernel's end-to-end speedup accounting.
const PREV_PR_COMMIT: &str = "3785dca";
const PREV_PR_SINGLE_JOB_MS: f64 = 33.303013;
const PREV_PR_SHARED_SCAN_BPS1_MS: f64 = 22.603631999999998;

fn corpus() -> BlockStore {
    let gen = TextGen::new(10_000, 1.1);
    let text = gen.generate(&mut SimRng::seed_from_u64(31), CORPUS_BYTES);
    BlockStore::from_text(&text, BLOCK_BYTES)
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn prefixes(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("{}a", (b'b' + i as u8) as char))
        .collect()
}

/// One `run_job` pass over the whole corpus.
fn bench_single_job(store: &BlockStore, repeats: usize) -> f64 {
    let cfg = ExecConfig {
        num_threads: THREADS,
        num_reducers: REDUCERS,
    ..ExecConfig::default()
    };
    let job = PatternWordCount::all();
    let samples = (0..repeats)
        .map(|_| time_ms(|| drop(run_job(&job, store, &cfg))))
        .collect();
    median_ms(samples)
}

/// One server revolution serving `SHARED_JOBS` jobs at one-block segments.
fn bench_shared_scan(store: &BlockStore, repeats: usize) -> f64 {
    let samples = (0..repeats)
        .map(|_| {
            time_ms(|| {
                let server =
                    SharedScanServer::new(store.clone(), BLOCKS_PER_SEGMENT, THREADS);
                let handles: Vec<_> = prefixes(SHARED_JOBS)
                    .into_iter()
                    .map(|p| server.submit(PatternWordCount::prefix(p)))
                    .collect();
                for h in handles {
                    h.wait().expect("job completed");
                }
                server.shutdown();
            })
        })
        .collect();
    median_ms(samples)
}

/// Submit-to-complete latency of a probe job landing on a live revolution.
fn bench_admission_latency(store: &BlockStore, repeats: usize) -> f64 {
    let samples = (0..repeats)
        .map(|_| {
            let server = SharedScanServer::new(store.clone(), BLOCKS_PER_SEGMENT, THREADS);
            let background = server.submit(PatternWordCount::all());
            // Let the revolution get moving before the probe arrives.
            while server.iterations() < 4 {
                std::thread::sleep(Duration::from_micros(200));
            }
            let t0 = Instant::now();
            let probe = server.submit(PatternWordCount::prefix("qa"));
            probe.wait().expect("job completed");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            background.wait().expect("job completed");
            server.shutdown();
            ms
        })
        .collect();
    median_ms(samples)
}

/// The same `SHARED_JOBS`-way shared revolution under a persistent
/// straggler, with fixed one-block segments or adaptive sizing. Fixed
/// mode pays the straggler (and the per-iteration fixed cost) on every
/// block it claims; adaptive mode grows segments toward
/// [`ADAPTIVE_MAX_BPS`] so healthy workers absorb more of each wave.
fn bench_straggler(store: &BlockStore, repeats: usize, adaptive: bool) -> f64 {
    let samples = (0..repeats)
        .map(|_| {
            time_ms(|| {
                let mut cfg = ServerConfig::new(BLOCKS_PER_SEGMENT, THREADS);
                cfg.ft = FtConfig {
                    deadline_floor: Duration::from_millis(3),
                    ..FtConfig::resilient()
                };
                cfg.faults = Some(FaultPlan {
                    faults: vec![EngineFault::SlowWorker {
                        worker: 0,
                        from_iter: 0,
                        until_iter: u64::MAX,
                        delay_us: STRAGGLER_DELAY_US,
                    }],
                });
                if adaptive {
                    cfg.adaptive = AdaptiveConfig {
                        enabled: true,
                        target_cadence: Duration::from_millis(2),
                        min_blocks_per_segment: 1,
                        max_blocks_per_segment: ADAPTIVE_MAX_BPS,
                    };
                }
                let server = SharedScanServer::with_config(store.clone(), cfg);
                let handles: Vec<_> = prefixes(SHARED_JOBS)
                    .into_iter()
                    .map(|p| server.submit(PatternWordCount::prefix(p)))
                    .collect();
                for h in handles {
                    h.wait().expect("job completed");
                }
                server.shutdown();
            })
        })
        .collect();
    median_ms(samples)
}

/// The shared workload at [`TAIL_BPS`]-block segments under the same
/// persistent straggler, on the legacy deadline-speculation tail
/// (`assist: false`) or the work-assisting claim loop (`assist: true`).
/// Exclusion is disabled so the straggler stays in play for the whole
/// run — the comparison is about how each mode recovers the tail it
/// leaves, not about removing it. Returns the median wall time plus the
/// metrics snapshot of the median run (its `engine.segment_scan_us`
/// histogram is the segment-tail latency evidence).
fn bench_tail_recovery(
    store: &BlockStore,
    repeats: usize,
    assist: bool,
) -> (f64, s3_obs::MetricsSnapshot) {
    let mut samples: Vec<(f64, s3_obs::MetricsSnapshot)> = (0..repeats)
        .map(|_| {
            let mut cfg = ServerConfig::new(TAIL_BPS, THREADS);
            cfg.obs = Obs::new();
            cfg.ft = FtConfig {
                assist,
                deadline_floor: Duration::from_millis(3),
                exclusion_threshold: u32::MAX,
                ..FtConfig::resilient()
            };
            cfg.faults = Some(FaultPlan {
                faults: vec![EngineFault::SlowWorker {
                    worker: 0,
                    from_iter: 0,
                    until_iter: u64::MAX,
                    delay_us: STRAGGLER_DELAY_US,
                }],
            });
            let obs = cfg.obs.clone();
            let ms = time_ms(|| {
                let server = SharedScanServer::with_config(store.clone(), cfg);
                let handles: Vec<_> = prefixes(SHARED_JOBS)
                    .into_iter()
                    .map(|p| server.submit(PatternWordCount::prefix(p)))
                    .collect();
                for h in handles {
                    h.wait().expect("job completed");
                }
                server.shutdown();
            });
            (ms, obs.snapshot().expect("Obs::new is on"))
        })
        .collect();
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    samples.swap_remove(samples.len() / 2)
}

/// The `engine.segment_scan_us` tail of one tail-recovery run, as JSON.
fn segment_tail_json(snap: &s3_obs::MetricsSnapshot) -> serde_json::Value {
    let h = snap
        .histograms
        .get("engine.segment_scan_us")
        .expect("segments were scanned");
    serde_json::json!({
        "count": (h.count),
        "p50": (h.p50),
        "p95": (h.p95),
        "max": (h.max),
    })
}

/// Word statistics with *no* combiner collapse: every token reaches the
/// reduce phase as its own record, so the reduce shards inherit the
/// corpus's full Zipf skew. (The fold-combiner jobs collapse each key to
/// one record per worker, which erases exactly the imbalance this
/// benchmark measures.) The reduce runs a 64-bit mix per occurrence —
/// modeling a compute-bearing aggregation, the regime where a shard's
/// cost tracks its record volume and placement decides the tail.
struct SkewWordCount;

impl MapReduceJob for SkewWordCount {
    type K = String;
    type V = i64;
    type Out = i64;
    fn map(&self, line: &str, emit: &mut dyn FnMut(String, i64)) {
        for w in line.split_whitespace() {
            emit(w.to_string(), w.len() as i64);
        }
    }
    fn reduce(&self, _k: &String, v: &[i64]) -> Option<i64> {
        let mut acc = 0u64;
        for &x in v {
            // splitmix64 finalizer per occurrence: a dependent multiply
            // chain the optimizer can neither vectorize away nor hoist.
            let mut z = (x as u64).wrapping_add(acc).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = z ^ (z >> 31);
        }
        Some(acc as i64)
    }
}

/// One skewed-reduce measurement: a [`SkewWordCount`] revolution over the
/// Zipf [`SKEW_ZIPF`] corpus under the given partition mode. Returns the
/// median run's (wall ms, reduce-phase wall ms, metrics snapshot); the
/// reduce-phase wall is the span from the first `reduce_shard` task
/// starting to the last one ending — under hash partitioning that is the
/// hot shard's runtime, which is what weighted planning attacks.
fn bench_skewed_reduce(
    store: &BlockStore,
    repeats: usize,
    partition: PartitionMode,
) -> (f64, f64, s3_obs::MetricsSnapshot) {
    let mut samples: Vec<(f64, f64, s3_obs::MetricsSnapshot)> = (0..repeats)
        .map(|_| {
            let mut cfg = ServerConfig::new(SKEW_BPS, SKEW_THREADS);
            cfg.obs = Obs::new();
            cfg.partition = partition;
            let obs = cfg.obs.clone();
            let ms = time_ms(|| {
                let server = SharedScanServer::with_config(store.clone(), cfg);
                let handle = server.submit(SkewWordCount);
                handle.wait().expect("job completed");
                server.shutdown();
            });
            let core = obs.core().expect("Obs::new is on");
            let (mut t0, mut t1) = (u64::MAX, 0u64);
            for ev in core.tracer.drain().iter().filter(|e| e.name == "reduce_shard") {
                t0 = t0.min(ev.ts_us);
                t1 = t1.max(ev.ts_us + ev.dur_us);
            }
            let reduce_ms = if t0 == u64::MAX {
                0.0
            } else {
                (t1 - t0) as f64 / 1e3
            };
            (ms, reduce_ms, obs.snapshot().expect("Obs::new is on"))
        })
        .collect();
    // Median by the reduce-phase wall — the measured quantity — not the
    // total wall, which buries a ~10 ms reduce phase in scan noise.
    samples.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    samples.swap_remove(samples.len() / 2)
}

/// The per-shard reduce evidence of one skewed run, as JSON: the
/// `engine.reduce_shard_us` tail plus the `engine.reduce_shard_records`
/// spread (how many records the heaviest shard reduced vs the median).
fn skew_shard_json(snap: &s3_obs::MetricsSnapshot) -> serde_json::Value {
    let us = snap
        .histograms
        .get("engine.reduce_shard_us")
        .expect("reduce shards ran");
    let recs = snap
        .histograms
        .get("engine.reduce_shard_records")
        .expect("reduce shards ran");
    serde_json::json!({
        "reduce_shard_us": {
            "count": (us.count),
            "p50": (us.p50),
            "p99": (us.p99),
            "max": (us.max),
        },
        "reduce_shard_records": {
            "count": (recs.count),
            "p50": (recs.p50),
            "p99": (recs.p99),
            "max": (recs.max),
        },
    })
}

/// Single-thread kernel microbenchmarks over the contiguous corpus:
/// returns (tokenize, newline-find, wordcount-map) throughput in GB/s.
/// The tokenize pass is the headline — the kernel target is >1 GB/s.
fn bench_kernel_throughput(store: &BlockStore, repeats: usize) -> (f64, f64, f64) {
    let data: Vec<u8> = store.iter().flat_map(|b| b.iter().copied()).collect();
    let gb = data.len() as f64 / 1e9;
    let gbps = |ms: f64| gb / (ms / 1e3);

    let tokenize_ms = median_ms(
        (0..repeats)
            .map(|_| {
                time_ms(|| {
                    let mut n = 0usize;
                    memchr::for_each_token(&data, |tok| n += tok.len());
                    std::hint::black_box(n);
                })
            })
            .collect(),
    );
    let newline_ms = median_ms(
        (0..repeats)
            .map(|_| {
                time_ms(|| {
                    std::hint::black_box(memchr::count_lines(&data));
                })
            })
            .collect(),
    );
    let wordcount_ms = median_ms(
        (0..repeats)
            .map(|_| {
                time_ms(|| {
                    let mut m: s3_engine::TokenMap<i64> = s3_engine::TokenMap::new();
                    memchr::for_each_token(&data, |tok| {
                        m.upsert_within(&data, tok, 1, |a, n| *a += n);
                    });
                    std::hint::black_box(m.len());
                })
            })
            .collect(),
    );
    (gbps(tokenize_ms), gbps(newline_ms), gbps(wordcount_ms))
}

/// One observed shared-scan revolution (identical workload to
/// [`bench_shared_scan`], outside the timed samples) whose `engine.*` /
/// `pool.*` metrics snapshot is embedded in the report. The snapshot
/// carries its own schema tag (`s3obs-metrics/v1`) in an additive field,
/// so readers of `s3bench-engine/v1` are unaffected.
fn capture_metrics_snapshot(store: &BlockStore) -> serde_json::Value {
    let obs = Obs::new();
    let server =
        SharedScanServer::new_observed(store.clone(), BLOCKS_PER_SEGMENT, THREADS, &obs);
    let handles: Vec<_> = prefixes(SHARED_JOBS)
        .into_iter()
        .map(|p| server.submit(PatternWordCount::prefix(p)))
        .collect();
    for h in handles {
        h.wait().expect("job completed");
    }
    server.shutdown();
    let snapshot = obs.snapshot().expect("Obs::new is on");
    let text = serde_json::to_string(&snapshot).expect("snapshot serializes");
    serde_json::from_str(&text).expect("snapshot round-trips")
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_engine.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown flag {other}; usage: s3bench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let repeats = if quick { 3 } else { 7 };

    eprintln!("s3bench: building {} MiB corpus...", CORPUS_BYTES >> 20);
    let store = corpus();
    eprintln!(
        "s3bench: {} blocks of {} KiB; threads={THREADS}, repeats={repeats}",
        store.num_blocks(),
        BLOCK_BYTES >> 10
    );

    eprintln!("s3bench: single-job scan...");
    let single_job_ms = bench_single_job(&store, repeats);
    eprintln!("  single_job            {single_job_ms:>10.2} ms");

    eprintln!("s3bench: {SHARED_JOBS}-way shared scan, blocks_per_segment={BLOCKS_PER_SEGMENT}...");
    let shared_scan_ms = bench_shared_scan(&store, repeats);
    eprintln!("  shared_scan_bps1      {shared_scan_ms:>10.2} ms");

    eprintln!("s3bench: admission latency under a live revolution...");
    let admission_ms = bench_admission_latency(&store, repeats);
    eprintln!("  admission_latency     {admission_ms:>10.2} ms");

    eprintln!(
        "s3bench: {SHARED_JOBS}-way shared scan under a {STRAGGLER_DELAY_US} µs/block \
         straggler, fixed bps={BLOCKS_PER_SEGMENT} vs adaptive (max {ADAPTIVE_MAX_BPS})..."
    );
    let fixed_straggler_ms = bench_straggler(&store, repeats, false);
    eprintln!("  fixed_straggler       {fixed_straggler_ms:>10.2} ms");
    let adaptive_straggler_ms = bench_straggler(&store, repeats, true);
    eprintln!("  adaptive_straggler    {adaptive_straggler_ms:>10.2} ms");

    eprintln!(
        "s3bench: segment-tail recovery under the same straggler, \
         bps={TAIL_BPS}: deadline speculation vs work-assist..."
    );
    let (speculative_ms, speculative_snap) = bench_tail_recovery(&store, repeats, false);
    eprintln!("  speculative_tail      {speculative_ms:>10.2} ms");
    let (assisted_ms, assisted_snap) = bench_tail_recovery(&store, repeats, true);
    eprintln!("  assisted_tail         {assisted_ms:>10.2} ms");

    eprintln!(
        "s3bench: skewed reduce (Zipf s={SKEW_ZIPF}, no combiner), \
         hash vs weighted partitioning, {SKEW_THREADS} shards..."
    );
    let skew_store = {
        let gen = TextGen::new(SKEW_VOCAB, SKEW_ZIPF);
        let text = gen.generate(&mut SimRng::seed_from_u64(47), CORPUS_BYTES);
        BlockStore::from_text(&text, BLOCK_BYTES)
    };
    let (hash_wall_ms, hash_reduce_ms, hash_snap) =
        bench_skewed_reduce(&skew_store, repeats, PartitionMode::Hash);
    eprintln!("  skew_hash_reduce      {hash_reduce_ms:>10.2} ms  (wall {hash_wall_ms:.2} ms)");
    let (wtd_wall_ms, wtd_reduce_ms, wtd_snap) =
        bench_skewed_reduce(&skew_store, repeats, PartitionMode::weighted());
    eprintln!("  skew_weighted_reduce  {wtd_reduce_ms:>10.2} ms  (wall {wtd_wall_ms:.2} ms)");

    eprintln!("s3bench: scan-kernel microbench (single thread, contiguous corpus)...");
    // More repeats: each pass is milliseconds, so medians are cheap.
    let (tokenize_gbps, newline_gbps, wordcount_gbps) =
        bench_kernel_throughput(&store, repeats * 3);
    eprintln!("  kernel_tokenize       {tokenize_gbps:>10.2} GB/s");
    eprintln!("  kernel_newline_find   {newline_gbps:>10.2} GB/s");
    eprintln!("  kernel_wordcount_map  {wordcount_gbps:>10.2} GB/s");

    eprintln!("s3bench: capturing telemetry snapshot (observed shared scan)...");
    let metrics = capture_metrics_snapshot(&store);

    let mb = store.total_bytes() as f64 / (1 << 20) as f64;
    let speedup = |base: f64, cur: f64| {
        if base.is_finite() && cur > 0.0 {
            serde_json::json!(base / cur)
        } else {
            serde_json::json!(null)
        }
    };
    let report = serde_json::json!({
        "schema": "s3bench-engine/v1",
        "generated_by": "cargo run --release -p s3-bench --bin s3bench",
        "config": {
            "corpus_bytes": (store.total_bytes()),
            "block_bytes": BLOCK_BYTES,
            "num_blocks": (store.num_blocks()),
            "threads": THREADS,
            "reducers": REDUCERS,
            "shared_jobs": SHARED_JOBS,
            "blocks_per_segment": BLOCKS_PER_SEGMENT,
            "repeats": repeats,
        },
        "baseline": {
            "commit": BASELINE_COMMIT,
            "note": "pre worker-pool engine: crossbeam::scope respawn per segment iteration, reduce on the coordinator",
            "single_job_ms": BASELINE_SINGLE_JOB_MS,
            "shared_scan_bps1_ms": BASELINE_SHARED_SCAN_BPS1_MS,
            "admission_latency_ms": BASELINE_ADMISSION_LATENCY_MS,
        },
        "current": {
            "single_job_ms": single_job_ms,
            "single_job_mb_per_s": (mb / (single_job_ms / 1e3)),
            "shared_scan_bps1_ms": shared_scan_ms,
            "shared_scan_bps1_mb_per_s": (mb / (shared_scan_ms / 1e3)),
            "admission_latency_ms": admission_ms,
        },
        "speedup_vs_baseline": {
            "single_job": (speedup(BASELINE_SINGLE_JOB_MS, single_job_ms)),
            "shared_scan_bps1": (speedup(BASELINE_SHARED_SCAN_BPS1_MS, shared_scan_ms)),
            "admission_latency": (speedup(BASELINE_ADMISSION_LATENCY_MS, admission_ms)),
        },
        "scan_kernel": {
            "note": "vendored SWAR kernel, one thread over the contiguous corpus; end-to-end speedups are against the previous PR's String-based scan path",
            "tokenize_gb_per_s": tokenize_gbps,
            "newline_find_gb_per_s": newline_gbps,
            "wordcount_map_gb_per_s": wordcount_gbps,
            "prev_pr": {
                "commit": PREV_PR_COMMIT,
                "single_job_ms": PREV_PR_SINGLE_JOB_MS,
                "shared_scan_bps1_ms": PREV_PR_SHARED_SCAN_BPS1_MS,
            },
            "speedup_vs_prev_pr": {
                "single_job": (speedup(PREV_PR_SINGLE_JOB_MS, single_job_ms)),
                "shared_scan_bps1": (speedup(PREV_PR_SHARED_SCAN_BPS1_MS, shared_scan_ms)),
            },
        },
        "adaptive_vs_fixed": {
            "note": "shared revolution under a persistent straggler; adaptive = dynamic sub-job adjustment, base/min 1 block, max 32",
            "straggler_delay_us": STRAGGLER_DELAY_US,
            "adaptive_max_blocks_per_segment": ADAPTIVE_MAX_BPS,
            "fixed_straggler_ms": fixed_straggler_ms,
            "adaptive_straggler_ms": adaptive_straggler_ms,
            "speedup": (speedup(fixed_straggler_ms, adaptive_straggler_ms)),
        },
        "assist_vs_speculative": {
            "note": "shared revolution under the same persistent straggler at multi-block segments, exclusion off; speculative = legacy EWMA-deadline tail, assisted = idle workers re-execute the uncommitted tail immediately",
            "straggler_delay_us": STRAGGLER_DELAY_US,
            "blocks_per_segment": TAIL_BPS,
            "speculative": {
                "wall_ms": speculative_ms,
                "segment_scan_us": (segment_tail_json(&speculative_snap)),
                "tasks_speculated": (speculative_snap.counter("engine.tasks_speculated")),
                "speculation_wins": (speculative_snap.counter("engine.speculation_wins")),
            },
            "assisted": {
                "wall_ms": assisted_ms,
                "segment_scan_us": (segment_tail_json(&assisted_snap)),
                "blocks_assisted": (assisted_snap.counter("engine.blocks_assisted")),
                "assist_ratio_bp": (assisted_snap.gauge("engine.assist_ratio")),
            },
            "wall_speedup": (speedup(speculative_ms, assisted_ms)),
            "tail_p95_speedup": (speedup(
                speculative_snap.histograms["engine.segment_scan_us"].p95,
                assisted_snap.histograms["engine.segment_scan_us"].p95,
            )),
        },
        "skew": {
            "note": "word count with no combiner collapse over a Zipf-skewed corpus; hash = distribution-oblivious sharding, weighted = sketch-built partition plan with heavy-shard splitting; reduce wall = first reduce_shard start to last reduce_shard end of the median run",
            "zipf_exponent": SKEW_ZIPF,
            "vocab": SKEW_VOCAB,
            "shards": SKEW_THREADS,
            "hash": {
                "wall_ms": hash_wall_ms,
                "reduce_wall_ms": hash_reduce_ms,
                "shards": (skew_shard_json(&hash_snap)),
            },
            "weighted": {
                "wall_ms": wtd_wall_ms,
                "reduce_wall_ms": wtd_reduce_ms,
                "shards": (skew_shard_json(&wtd_snap)),
            },
            "reduce_wall_speedup": (speedup(hash_reduce_ms, wtd_reduce_ms)),
            "shard_p99_us_speedup": (speedup(
                hash_snap.histograms["engine.reduce_shard_us"].p99,
                wtd_snap.histograms["engine.reduce_shard_us"].p99,
            )),
        },
        "metrics": metrics,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_engine.json");
    eprintln!("s3bench: wrote {out_path}");
}
